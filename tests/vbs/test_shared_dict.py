"""Task-scope shared dictionaries: encode_task + runtime ownership.

A task that loads several containers (replicated instances, partitioned
regions) stores one pattern table in external memory; every VERSION 4
container of the task references it by id.  Pinned here:

* the task-scope keep-if-it-pays decision — the table is kept exactly
  when the summed container payloads plus the external table storage
  beat the independent encodes;
* byte identity of the emitted containers across the serial, thread and
  process encode backends (the task-scope selection runs after the
  deterministic merges);
* the controller/manager lifecycle — a resident table exists exactly
  while at least one resident task references it, and eviction of the
  last referencing task drops it (external memory keeps it for later
  reloads).
"""

import pytest

from repro.arch import ArchParams, FabricArch
from repro.bitstream import expand_routing
from repro.cad import run_flow
from repro.errors import RuntimeManagementError, VbsError
from repro.netlist import CircuitSpec, generate_circuit
from repro.runtime import ExternalMemory, ReconfigurationController
from repro.runtime.manager import FabricManager
from repro.vbs import VirtualBitstream, decode_vbs, encode_task


@pytest.fixture(scope="module")
def dpath_flow():
    spec = CircuitSpec(
        "dpath-shared", n_luts=40, n_inputs=8, n_outputs=6, pattern_pool=3
    )
    return run_flow(
        generate_circuit(spec), ArchParams(channel_width=8), seed=1
    )


@pytest.fixture(scope="module")
def dpath_config(dpath_flow):
    return expand_routing(
        dpath_flow.design, dpath_flow.placement, dpath_flow.routing,
        dpath_flow.rrg,
    )


@pytest.fixture(scope="module")
def task_result(dpath_flow, dpath_config):
    return encode_task(
        [(dpath_flow, dpath_config)] * 3, dict_id=7, cluster_size=2,
        codecs="auto",
    )


class TestTaskScopeEncode:
    def test_shared_table_pays_at_task_scope(self, task_result):
        assert task_result.shared
        assert task_result.shared_bits < task_result.solo_bits
        # The accounting includes the external table storage once.
        assert task_result.table_bits == sum(
            len(p) for p in task_result.table
        )
        for vbs in task_result.containers:
            assert vbs.wire_version == 4
            assert vbs.layout.shared_dict_id == 7
            assert vbs.layout.dict_table == task_result.table
            assert "dict" in vbs.stats.codec_counts

    def test_byte_identical_across_backends(self, dpath_flow, dpath_config,
                                            task_result):
        jobs = [(dpath_flow, dpath_config)] * 3
        threaded = encode_task(jobs, dict_id=7, cluster_size=2,
                               codecs="auto", workers=3, backend="thread")
        processed = encode_task(jobs, dict_id=7, cluster_size=2,
                                codecs="auto", workers=2, backend="process")
        for a, b, c in zip(task_result.containers, threaded.containers,
                           processed.containers):
            blob = a.to_bits().to_bytes()
            assert b.to_bits().to_bytes() == blob
            assert c.to_bits().to_bytes() == blob

    def test_shared_containers_decode_like_solo(self, dpath_flow,
                                                dpath_config, task_result):
        from repro.vbs import encode_flow

        solo = encode_flow(dpath_flow, dpath_config, cluster_size=2,
                           codecs="auto")
        resolver = {7: task_result.table}
        for vbs in task_result.containers:
            parsed = VirtualBitstream.from_bits(
                vbs.to_bits(), shared_dicts=resolver
            )
            a, _ = decode_vbs(parsed)
            b, _ = decode_vbs(solo)
            assert a.content_equal(b)

    def test_table_not_kept_when_it_cannot_pay(self, dpath_flow,
                                               dpath_config):
        # Without the dictionary codec there is nothing to share.
        result = encode_task(
            [(dpath_flow, dpath_config)] * 2, dict_id=3, cluster_size=2,
            codecs=("list", "raw"),
        )
        assert not result.shared
        assert result.shared_bits == result.solo_bits
        for vbs in result.containers:
            assert vbs.layout.shared_dict_id is None

    def test_solo_containers_match_encode_design(self, dpath_flow,
                                                 dpath_config):
        """When sharing is off the task containers are byte-identical to
        independent encodes — encode_task adds no side effects."""
        from repro.vbs import encode_flow

        result = encode_task(
            [(dpath_flow, dpath_config)] * 2, dict_id=3, cluster_size=2,
            codecs=("list", "raw"),
        )
        solo = encode_flow(dpath_flow, dpath_config, cluster_size=2,
                           codecs=("list", "raw"))
        for vbs in result.containers:
            assert vbs.to_bits().to_bytes() == solo.to_bits().to_bytes()

    def test_paper_strict_selection_supported(self, dpath_flow,
                                              dpath_config):
        """codecs=None (the paper-strict Table I mode) must work through
        encode_task too — no family pass, no sharing, containers
        byte-identical to encode_design."""
        from repro.vbs import encode_flow

        result = encode_task(
            [(dpath_flow, dpath_config)] * 2, dict_id=2, cluster_size=1,
            codecs=None,
        )
        assert not result.shared
        solo = encode_flow(dpath_flow, dpath_config, cluster_size=1)
        for vbs in result.containers:
            assert vbs.to_bits().to_bytes() == solo.to_bits().to_bytes()
        assert result.solo_bits == 2 * solo.size_bits

    def test_validation(self, dpath_flow, dpath_config):
        with pytest.raises(VbsError, match="at least one"):
            encode_task([], dict_id=1)
        with pytest.raises(VbsError, match="dictionary id"):
            encode_task([(dpath_flow, dpath_config)], dict_id=0)
        with pytest.raises(VbsError, match="dictionary id"):
            encode_task([(dpath_flow, dpath_config)], dict_id=1 << 16)


class TestRuntimeLifecycle:
    def _manager(self, dpath_flow, task_result, capacity=16):
        params = dpath_flow.params
        w, h = dpath_flow.fabric.width, dpath_flow.fabric.height
        fabric = FabricArch(
            params, 3 * w + 4, h + 2,
            {(x, y): "clb"
             for x in range(3 * w + 4) for y in range(h + 2)},
        )
        ctrl = ReconfigurationController(
            fabric, ExternalMemory(bus_bits=32), cache_capacity=capacity
        )
        ctrl.store_task(["t0", "t1", "t2"], task_result)
        return FabricManager(ctrl)

    def test_store_task_publishes_table_and_images(self, dpath_flow,
                                                   task_result):
        mgr = self._manager(dpath_flow, task_result)
        memory = mgr.controller.memory
        assert memory.names() == ["t0", "t1", "t2"]
        assert memory.shared_dict_ids() == [7]
        assert memory.shared_dict(7) == task_result.table
        assert memory.shared_dict_bits == task_result.table_bits

    def test_table_resident_while_any_task_references_it(self, dpath_flow,
                                                         task_result):
        mgr = self._manager(dpath_flow, task_result)
        ctrl = mgr.controller
        for name in ("t0", "t1", "t2"):
            mgr.place_task(name)
        assert mgr.shared_dict_ids == [7]
        ctrl.unload_task("t0")
        assert mgr.shared_dict_ids == [7]
        ctrl.unload_task("t1")
        assert mgr.shared_dict_ids == [7]
        ctrl.unload_task("t2")  # last reference leaves -> table dropped
        assert mgr.shared_dict_ids == []
        # External memory still holds it: reloads fault it back in.
        mgr.place_task("t1")
        assert mgr.shared_dict_ids == [7]

    def test_eviction_through_manager_drops_table_exactly_once_empty(
        self, dpath_flow, task_result
    ):
        """make_room evictions release references like explicit unloads:
        the table survives every eviction but the last."""
        mgr = self._manager(dpath_flow, task_result)
        for name in ("t0", "t1", "t2"):
            mgr.place_task(name)
        image = mgr.controller.memory.image("t0")
        evicted = mgr.make_room(
            mgr.controller.fabric.width, mgr.controller.fabric.height
        )
        if evicted is None:
            evicted = []
            while mgr.controller.resident:
                victim = next(iter(mgr.controller.resident))
                mgr.controller.unload_task(victim)
                evicted.append(victim)
        assert image is not None
        assert set(evicted) <= {"t0", "t1", "t2"}
        assert mgr.shared_dict_ids == ([] if len(evicted) == 3 else [7])

    def test_cache_hit_reload_still_refcounts(self, dpath_flow,
                                              task_result):
        """A cached reload never re-parses the container; the cache entry
        carries the shared-dictionary id so refcounting stays exact."""
        mgr = self._manager(dpath_flow, task_result)
        ctrl = mgr.controller
        first = mgr.place_task("t0")
        assert not first.load_cost.cache_hit
        ctrl.unload_task("t0")
        assert mgr.shared_dict_ids == []
        again = mgr.place_task("t0")
        assert again.load_cost.cache_hit
        assert again.shared_dict_id == 7
        assert mgr.shared_dict_ids == [7]
        ctrl.unload_task("t0")
        assert mgr.shared_dict_ids == []

    def test_missing_table_fails_loudly(self, dpath_flow, task_result):
        mgr = self._manager(dpath_flow, task_result)
        mgr.controller.memory.remove_shared_dict(7)
        with pytest.raises((VbsError, RuntimeManagementError)):
            mgr.place_task("t0")
        # And cleanly: nothing was registered or configured.
        assert mgr.controller.resident == {}
        assert mgr.controller.config.logic == {}

    def test_failed_cached_reload_leaves_no_resident_state(
        self, dpath_flow, task_result
    ):
        """A cache-hit reload whose table left external memory must fail
        without half-registering the task (the retain happens before any
        fabric mutation)."""
        mgr = self._manager(dpath_flow, task_result)
        ctrl = mgr.controller
        mgr.place_task("t0")
        ctrl.unload_task("t0")
        ctrl.memory.remove_shared_dict(7)
        with pytest.raises((VbsError, RuntimeManagementError)):
            mgr.place_task("t0")
        assert ctrl.resident == {}
        assert ctrl.config.logic == {}
        assert mgr.shared_dict_ids == []
        # Re-publishing the table heals the path entirely (the stale
        # cache entry was dropped, so this is a fresh decode).
        ctrl.memory.store_shared_dict(7, task_result.table)
        task = mgr.place_task("t0")
        assert task.shared_dict_id == 7
        assert mgr.shared_dict_ids == [7]

    def test_uncached_decode_path_refcounts_too(self, dpath_flow,
                                                task_result):
        """With the decode cache disabled every load parses the container
        directly — the refcount contract is identical."""
        mgr = self._manager(dpath_flow, task_result, capacity=0)
        assert mgr.controller.decode_cache is None
        mgr.place_task("t0")
        mgr.place_task("t1")
        assert mgr.shared_dict_ids == [7]
        mgr.controller.unload_task("t0")
        assert mgr.shared_dict_ids == [7]
        mgr.controller.unload_task("t1")
        assert mgr.shared_dict_ids == []

    def test_republished_table_invalidates_cached_expansion(
        self, dpath_flow, dpath_config, task_result
    ):
        """The cache key digests only the container bytes (a 16-bit id
        for shared tables), so a republished id must invalidate the
        entry rather than serve the old table's expansion."""
        from repro.utils.bitarray import BitArray

        mgr = self._manager(dpath_flow, task_result)
        ctrl = mgr.controller
        mgr.place_task("t0")
        ctrl.unload_task("t0")
        assert ctrl.decode_cache.stats.misses == 1
        # Republish id 7 with a different (same-shape) table while no
        # task references it.
        mutated = tuple(
            BitArray.from_bits([1 - b for b in p])
            for p in task_result.table
        )
        ctrl.memory.store_shared_dict(7, mutated)
        task = mgr.place_task("t0")
        # Stale entry dropped: this load re-decoded with the new table.
        assert not task.load_cost.cache_hit
        assert ctrl.decode_cache.stats.misses == 2

    def test_republish_while_resident_fails_loudly(
        self, dpath_flow, task_result
    ):
        from repro.utils.bitarray import BitArray

        mgr = self._manager(dpath_flow, task_result)
        ctrl = mgr.controller
        mgr.place_task("t0")
        mutated = tuple(
            BitArray.from_bits([1 - b for b in p])
            for p in task_result.table
        )
        ctrl.memory.store_shared_dict(7, mutated)
        with pytest.raises(RuntimeManagementError, match="republished"):
            mgr.place_task("t1")
        # The already-resident task is untouched.
        assert list(ctrl.resident) == ["t0"]

    def test_migrate_keeps_task_when_table_republished_or_gone(
        self, dpath_flow, task_result
    ):
        """migrate_task validates the shared table like its other
        preconditions — before the unload — so a republished or vanished
        table fails with the task still resident, never lost mid-move."""
        from repro.utils.bitarray import BitArray

        mgr = self._manager(dpath_flow, task_result)
        ctrl = mgr.controller
        task = mgr.place_task("t0")
        origin = (task.region.x, task.region.y)
        w = task.region.w
        mutated = tuple(
            BitArray.from_bits([1 - b for b in p])
            for p in task_result.table
        )
        ctrl.memory.store_shared_dict(7, mutated)
        with pytest.raises(RuntimeManagementError, match="republished"):
            ctrl.migrate_task("t0", (origin[0] + w, origin[1]))
        assert list(ctrl.resident) == ["t0"]
        assert ctrl.resident["t0"].region.x == origin[0]
        # Vanished table: same contract.
        ctrl.memory.remove_shared_dict(7)
        ctrl.shared_dicts.clear()  # simulate the resident copy lost too
        with pytest.raises(RuntimeManagementError, match="no longer"):
            ctrl.migrate_task("t0", (origin[0] + w, origin[1]))
        assert list(ctrl.resident) == ["t0"]

    def test_memory_store_validation(self, task_result):
        memory = ExternalMemory()
        with pytest.raises(RuntimeManagementError, match=">= 1"):
            memory.store_shared_dict(0, task_result.table)
        with pytest.raises(RuntimeManagementError, match="at least one"):
            memory.store_shared_dict(3, ())
        with pytest.raises(RuntimeManagementError, match="no shared"):
            memory.remove_shared_dict(3)
        assert memory.shared_dict(3) is None
        assert memory.shared_dict_bits == 0

    def test_store_task_name_mismatch(self, dpath_flow, task_result):
        ctrl = ReconfigurationController(
            FabricArch(dpath_flow.params, 8, 8,
                       {(x, y): "clb" for x in range(8) for y in range(8)}),
            ExternalMemory(),
        )
        with pytest.raises(RuntimeManagementError, match="names"):
            ctrl.store_task(["only-one"], task_result)
