"""vbsgen + de-virtualization: the paper's core loop, end to end."""

import pytest

from repro.bitstream import RawBitstream
from repro.errors import VbsError
from repro.fabric import verify_connectivity, verify_functional
from repro.vbs import (
    VirtualBitstream,
    decode_at,
    decode_vbs,
    encode_flow,
)


@pytest.fixture(scope="module")
def vbs1(small_flow, small_config):
    return encode_flow(small_flow, small_config, cluster_size=1)


@pytest.fixture(scope="module")
def vbs2(small_flow, small_config):
    return encode_flow(small_flow, small_config, cluster_size=2)


class TestEncode:
    def test_compresses_versus_raw(self, vbs1, small_config):
        raw = RawBitstream.from_config(small_config)
        assert vbs1.size_bits < raw.size_bits
        assert 0.0 < vbs1.compression_ratio() < 1.0

    def test_empty_clusters_omitted(self, vbs1, small_flow):
        total = small_flow.fabric.width * small_flow.fabric.height
        assert len(vbs1.records) < total

    def test_positions_unique_and_sorted(self, vbs1):
        poses = [rec.pos for rec in vbs1.records]
        assert len(set(poses)) == len(poses)
        assert poses == sorted(poses, key=lambda p: (p[1], p[0]))

    def test_stats_accounting(self, vbs1):
        st = vbs1.stats
        assert st.clusters_listed == len(vbs1.records)
        assert st.clusters_raw == sum(1 for r in vbs1.records if r.raw)
        assert st.pairs_total >= sum(
            len(r.pairs) for r in vbs1.records if not r.raw
        )

    def test_cluster2_fewer_records(self, vbs1, vbs2):
        assert len(vbs2.records) < len(vbs1.records)
        assert vbs2.layout.cluster_size == 2


class TestSerialization:
    def test_container_roundtrip(self, vbs1):
        bits = vbs1.to_bits()
        assert len(bits) == vbs1.container_bits
        parsed = VirtualBitstream.from_bits(bits)
        assert parsed.size_bits == vbs1.size_bits
        assert len(parsed.records) == len(vbs1.records)
        for a, b in zip(parsed.records, vbs1.records):
            assert a.pos == b.pos and a.raw == b.raw
            if not a.raw:
                assert a.pairs == b.pairs and a.logic == b.logic

    def test_bad_magic_rejected(self, vbs1):
        bits = vbs1.to_bits()
        bits[0] ^= 1
        with pytest.raises(VbsError):
            VirtualBitstream.from_bits(bits)

    def test_params_mismatch_rejected(self, vbs1, params5):
        bits = vbs1.to_bits()
        with pytest.raises(VbsError):
            VirtualBitstream.from_bits(bits, params=params5)  # W=5 != 8


class TestDecode:
    def test_decoded_config_connectivity(self, vbs1, small_flow):
        cfg, _stats = decode_vbs(vbs1)
        verify_connectivity(
            small_flow.design, small_flow.placement, cfg, small_flow.fabric
        )

    def test_decoded_config_functional(
        self, vbs2, small_flow, small_netlist
    ):
        cfg, _stats = decode_vbs(vbs2)
        verify_functional(
            small_netlist, small_flow.design, small_flow.placement, cfg,
            small_flow.fabric, num_vectors=10,
        )

    def test_decode_stats(self, vbs1):
        _cfg, stats = decode_vbs(vbs1)
        assert stats.clusters_decoded + stats.clusters_raw == len(vbs1.records)
        assert stats.router_work > 0
        assert stats.max_cluster_work <= stats.router_work

    def test_decode_from_container_bits(self, vbs1, small_flow):
        cfg, _ = decode_vbs(vbs1.to_bits())
        verify_connectivity(
            small_flow.design, small_flow.placement, cfg, small_flow.fabric
        )

    def test_logic_preserved(self, vbs1, small_config):
        cfg, _ = decode_vbs(vbs1)
        mine = {
            c: b for c, b in small_config.logic.items() if b.count()
        }
        theirs = {c: b for c, b in cfg.logic.items() if b.count()}
        assert mine == theirs


class TestRelocation:
    def test_translation_invariance(self, vbs2):
        base = decode_at(vbs2, 0, 0)
        moved = decode_at(vbs2, 5, 2)
        assert base.translated(5, 2).content_equal(moved)

    def test_region_follows_origin(self, vbs2):
        moved = decode_at(vbs2, 3, 4)
        assert (moved.region.x, moved.region.y) == (3, 4)

    def test_decode_deterministic(self, vbs2):
        a = decode_at(vbs2, 1, 1)
        b = decode_at(vbs2, 1, 1)
        assert a.content_equal(b)


class TestCompactLogicMode:
    """The Section V future-work coding (presence-flagged logic fields)."""

    def test_never_larger_than_table1(self, small_flow, small_config):
        for c in (1, 2, 3):
            plain = encode_flow(small_flow, small_config, cluster_size=c)
            compact = encode_flow(
                small_flow, small_config, cluster_size=c, compact_logic=True
            )
            assert compact.size_bits <= plain.size_bits

    def test_container_roundtrip(self, small_flow, small_config):
        compact = encode_flow(
            small_flow, small_config, cluster_size=2, compact_logic=True
        )
        parsed = VirtualBitstream.from_bits(compact.to_bits())
        assert parsed.layout.compact_logic
        assert parsed.size_bits == compact.size_bits

    def test_decodes_to_same_content(self, small_flow, small_config):
        plain = encode_flow(small_flow, small_config, cluster_size=2)
        compact = encode_flow(
            small_flow, small_config, cluster_size=2, compact_logic=True
        )
        a, _ = decode_vbs(VirtualBitstream.from_bits(plain.to_bits()))
        b, _ = decode_vbs(VirtualBitstream.from_bits(compact.to_bits()))
        assert a.content_equal(b)

    def test_functional_after_compact_roundtrip(
        self, small_flow, small_config, small_netlist
    ):
        compact = encode_flow(
            small_flow, small_config, cluster_size=3, compact_logic=True
        )
        cfg, _ = decode_vbs(VirtualBitstream.from_bits(compact.to_bits()))
        verify_functional(
            small_netlist, small_flow.design, small_flow.placement, cfg,
            small_flow.fabric, num_vectors=8,
        )

    def test_size_accounting_matches_serialization(
        self, small_flow, small_config
    ):
        from repro.vbs.format import PRELUDE_BITS

        compact = encode_flow(
            small_flow, small_config, cluster_size=2, compact_logic=True
        )
        assert len(compact.to_bits()) == PRELUDE_BITS + compact.size_bits


class TestCodecSelection:
    """The cost-driven picker (codecs=) layered over the registry."""

    def test_auto_never_larger_than_strict(self, small_flow, small_config):
        strict = encode_flow(small_flow, small_config, cluster_size=1)
        auto = encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto"
        )
        assert auto.size_bits <= strict.size_bits
        assert sum(auto.stats.codec_counts.values()) == len(auto.records)

    def test_auto_roundtrip_decodes_identically(
        self, small_flow, small_config
    ):
        strict = encode_flow(small_flow, small_config, cluster_size=1)
        auto = encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto"
        )
        a, _ = decode_vbs(VirtualBitstream.from_bits(strict.to_bits()))
        b, _ = decode_vbs(VirtualBitstream.from_bits(auto.to_bits()))
        assert a.content_equal(b)

    def test_raw_only_selection(self, small_flow, small_config):
        vbs = encode_flow(
            small_flow, small_config, cluster_size=1, codecs=["raw"]
        )
        assert vbs.records and all(rec.raw for rec in vbs.records)
        assert vbs.stats.codec_counts == {"raw": len(vbs.records)}
        # Raw coding copies the expanded frames verbatim; the decoded task
        # must still realize every net (the router may pick different but
        # equivalent doglegs than the raw snapshot, so compare nets, not
        # bits).
        cfg, stats = decode_vbs(VirtualBitstream.from_bits(vbs.to_bits()))
        assert stats.clusters_raw == len(vbs.records)
        verify_connectivity(
            small_flow.design, small_flow.placement, cfg, small_flow.fabric
        )

    def test_parallel_encode_byte_identical(self, small_flow, small_config):
        serial = encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto"
        )
        pooled = encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto", workers=4
        )
        assert serial.to_bits() == pooled.to_bits()


class TestDecodeMemo:
    def test_identical_lists_reused(self, vbs1):
        from repro.vbs import DecodeMemo

        memo = DecodeMemo()
        _cfg, plain = decode_vbs(vbs1)
        cfg, stats = decode_vbs(vbs1, memo=memo)
        # Same expansion, and the second decode against the warm memo
        # performs zero router work.
        _cfg2, stats2 = decode_vbs(vbs1, memo=memo)
        assert cfg.content_equal(_cfg)
        assert stats2.clusters_reused == stats2.clusters_decoded
        assert stats2.router_work == 0
        assert plain.clusters_decoded == stats.clusters_decoded

    def test_memo_keys_on_model(self, params5, params8):
        """Identical lists under different arch params must not alias."""
        from repro.arch.macro import get_cluster_model
        from repro.vbs import DecodeMemo

        memo = DecodeMemo()
        r5, reused5 = memo.decode(get_cluster_model(params5, 1), [(0, 1)])
        r8, reused8 = memo.decode(get_cluster_model(params8, 1), [(0, 1)])
        assert not reused5 and not reused8
        fresh = DecodeMemo()
        solo8, _ = fresh.decode(get_cluster_model(params8, 1), [(0, 1)])
        assert r8.closed == solo8.closed

    def test_memo_bound_evicts(self, params8):
        from repro.arch.macro import get_cluster_model
        from repro.vbs import DecodeMemo

        model = get_cluster_model(params8, 1)
        memo = DecodeMemo(max_entries=2)
        for out_io in (1, 2, 3, 4):
            memo.decode(model, [(0, out_io)])
        assert len(memo) == 2
        assert memo.misses == 4 and memo.hits == 0


class TestClusterSweep:
    @pytest.mark.parametrize("cluster", [1, 2, 3, 4])
    def test_every_granularity_verifies(
        self, small_flow, small_config, small_netlist, cluster
    ):
        vbs = encode_flow(small_flow, small_config, cluster_size=cluster)
        cfg, _ = decode_vbs(VirtualBitstream.from_bits(vbs.to_bits()))
        verify_connectivity(
            small_flow.design, small_flow.placement, cfg, small_flow.fabric
        )

    def test_decode_work_grows_with_cluster(self, small_flow, small_config):
        works = []
        for c in (1, 3):
            vbs = encode_flow(small_flow, small_config, cluster_size=c)
            _cfg, stats = decode_vbs(vbs)
            works.append(stats.router_work)
        assert works[1] > works[0]  # "higher computing power to decode"
