"""The VERSION 3 codec family end to end: vbsgen, runtime, monotonicity.

The load-bearing regression here is *monotone improvement*: the family
(`codecs="auto"` over all eight codecs) must never emit a larger
container than the PR-1 codec set on real routed designs — the
dictionary table is only kept when it pays for itself, delta and the
Golomb/Elias variants only win records they shrink.
"""

import pytest

from repro.fabric import verify_connectivity, verify_functional
from repro.vbs import VirtualBitstream, decode_vbs, encode_flow

#: The codec set of PR 1 (container VERSION 2) — the monotone baseline.
PR1_CODECS = ["list", "raw", "compact", "rle"]

#: The complete VERSION 3 set — the baseline the VERSION 4 wide-tag
#: family must never lose to (and must strictly beat where it engages).
from repro.vbs import V3_CODECS


@pytest.fixture(scope="module")
def family_vbs(small_flow, small_config):
    return encode_flow(
        small_flow, small_config, cluster_size=1, codecs="auto"
    )


class TestMonotoneImprovement:
    @pytest.mark.parametrize("cluster", [1, 2, 3])
    def test_family_never_larger_than_pr1_set(
        self, small_flow, small_config, cluster
    ):
        pr1 = encode_flow(
            small_flow, small_config, cluster_size=cluster, codecs=PR1_CODECS
        )
        family = encode_flow(
            small_flow, small_config, cluster_size=cluster, codecs="auto"
        )
        assert family.size_bits <= pr1.size_bits
        # And the wire container (framing included) shrinks too.
        assert len(family.to_bits()) <= len(pr1.to_bits())

    def test_family_never_larger_on_tiny_workload(
        self, tiny_flow, tiny_config
    ):
        pr1 = encode_flow(
            tiny_flow, tiny_config, cluster_size=1, codecs=PR1_CODECS
        )
        family = encode_flow(
            tiny_flow, tiny_config, cluster_size=1, codecs="auto"
        )
        assert family.size_bits <= pr1.size_bits

    @pytest.mark.integration
    def test_family_never_larger_on_benchmark_netlist(self):
        """The Table II proxy circuits (reduced scale for CI)."""
        from repro.bitstream import expand_routing
        from repro.eval.experiments import flow_for

        flow = flow_for("ex5p", channel_width=8, scale=0.06, seed=1)
        config = expand_routing(
            flow.design, flow.placement, flow.routing, flow.rrg
        )
        for cluster in (1, 2):
            pr1 = encode_flow(
                flow, config, cluster_size=cluster, codecs=PR1_CODECS
            )
            family = encode_flow(
                flow, config, cluster_size=cluster, codecs="auto"
            )
            assert family.size_bits <= pr1.size_bits

    def test_raw_demotion_deferred_to_family_pass(self):
        """A cluster where raw narrowly beats the stateless codecs must
        still be offered to delta/dict — the family pass owns the final
        raw-versus-smart decision when family codecs are allowed."""
        from repro.utils.bitarray import BitArray
        from repro.vbs.encode import _family_selection
        from repro.vbs.format import ClusterRecord, VbsLayout
        from repro.arch import ArchParams
        from repro.vbs.codecs import codec_by_name

        layout = VbsLayout(ArchParams(channel_width=8), 1, 8, 8)
        nlb = layout.logic_bits_per_cluster
        dense = BitArray(nlb, fill=1)
        # Two identical dense clusters: each alone codes worse than raw
        # would for pathological pair counts, but the second one's delta
        # residue is all-zero — far cheaper than both.
        first = ClusterRecord((0, 0), raw=False, logic=dense.copy(),
                              pairs=[], codec="list")
        second = ClusterRecord((1, 0), raw=False, logic=dense.copy(),
                               pairs=[], codec="list")
        frames = {(1, 0): BitArray(layout.raw_bits_per_cluster)}
        family = [codec_by_name("delta")]
        total, assigns = _family_selection(
            [first, second], layout, family, True, frames
        )
        assert assigns[1] == "delta"
        # Against the threaded state the residue is empty, so the chosen
        # coding beats both the stateless pick and the raw record.
        assert total < (
            layout.header_bits
            + first.size_bits(layout)
            + layout.raw_record_bits
        )

    @pytest.mark.parametrize("cluster", [1, 2, 3])
    def test_v4_family_never_larger_than_v3_set(
        self, small_flow, small_config, cluster
    ):
        """The monotone chain across format generations: the VERSION 4
        family never loses to the VERSION 3 set, which never loses to
        the PR-1 set."""
        pr1 = encode_flow(
            small_flow, small_config, cluster_size=cluster, codecs=PR1_CODECS
        )
        v3 = encode_flow(
            small_flow, small_config, cluster_size=cluster,
            codecs=list(V3_CODECS),
        )
        v4 = encode_flow(
            small_flow, small_config, cluster_size=cluster, codecs="auto"
        )
        assert v4.size_bits <= v3.size_bits <= pr1.size_bits
        # The wide tag field is adopted only when it strictly pays.
        if v4.wire_version == 4:
            assert v4.size_bits < v3.size_bits
        else:
            assert v4.size_bits == v3.size_bits

    def test_v4_strictly_improves_on_replicated_datapath(self):
        """The workload the wide-tag codecs exist for: a replicated
        datapath (small truth-table vocabulary stamped across the
        fabric) whose near-duplicate cluster fields the best-of-k delta
        reference exploits.  VERSION 4 must engage and strictly shrink
        the container versus the full VERSION 3 pick."""
        from repro.arch import ArchParams
        from repro.bitstream import expand_routing
        from repro.cad import run_flow
        from repro.netlist import CircuitSpec, generate_circuit

        spec = CircuitSpec(
            "dpath-tile", n_luts=40, n_inputs=8, n_outputs=6,
            pattern_pool=3,
        )
        flow = run_flow(generate_circuit(spec), ArchParams(channel_width=8),
                        seed=1)
        config = expand_routing(
            flow.design, flow.placement, flow.routing, flow.rrg
        )
        improved = False
        for cluster in (2, 3):
            v3 = encode_flow(
                flow, config, cluster_size=cluster, codecs=list(V3_CODECS)
            )
            v4 = encode_flow(flow, config, cluster_size=cluster,
                             codecs="auto")
            assert v4.size_bits <= v3.size_bits
            if v4.wire_version == 4:
                improved = True
                assert v4.size_bits < v3.size_bits
                used = set(v4.stats.codec_counts) & {"rice-a", "delta-k"}
                assert used, v4.stats.codec_counts
                # And the container round-trips through the wire.
                parsed = VirtualBitstream.from_bits(v4.to_bits())
                a, _ = decode_vbs(parsed)
                b, _ = decode_vbs(v3)
                assert a.content_equal(b)
        assert improved

    def test_family_engages_new_codecs(self, family_vbs):
        """At least one VERSION 3 codec must actually win records on the
        small workload (otherwise the family is dead code)."""
        new_names = {"dict", "delta", "golomb", "eliasg"}
        used = set(family_vbs.stats.codec_counts) & new_names
        assert used, family_vbs.stats.codec_counts
        assert family_vbs.wire_version == 3


def _pool_records(layout, logics):
    from repro.vbs.format import ClusterRecord

    return [
        ClusterRecord((i % layout.width, i // layout.width), raw=False,
                      logic=logic.copy(), pairs=[], codec="list")
        for i, logic in enumerate(logics)
    ]


class TestCodecFrontier:
    """The VERSION 4 frontier additions: dict-delta and raw-delta."""

    def _pool_workload(self, layout):
        """A replicated-pool workload with one near-miss cluster: two
        patterns repeat exactly (the table pays for itself), the B run
        flushes A out of the delta history, and the final record is A
        plus one extra set bit — reachable cheaply only through the
        dictionary."""
        from repro.utils.bitarray import BitArray

        nlb = layout.logic_bits_per_cluster

        def bits_with(positions):
            arr = BitArray(nlb)
            for p in positions:
                arr[p] = 1
            return arr

        a = bits_with([2, 9, 17, 25, 33, 41, 49, 57, 60, 63])
        b = bits_with([5, 12, 20, 28, 36, 44, 52, 58, 61, 64])
        near = a.copy()
        near[55] = 1
        return [a, a, a, b, b, b, b, near]

    def test_dict_delta_strictly_wins_near_miss_pool(self):
        """The workload dict-delta exists for: the near-miss record's
        nearest dictionary pattern is out of delta range (the history
        holds only B), so the 1-bit XOR residue against the table must
        win — and the whole container must get strictly smaller than
        the same family without dict-delta."""
        from repro.arch import ArchParams
        from repro.vbs.codecs import registered_codecs
        from repro.vbs.encode import _family_pass, _family_pass_choice
        from repro.vbs.format import VbsLayout

        layout = VbsLayout(ArchParams(channel_width=8), 1, 8, 8)
        logics = self._pool_workload(layout)
        allowed = list(registered_codecs())
        lay, out = _family_pass(
            _pool_records(layout, logics), layout, allowed, {}
        )
        assert [r.codec for r in out][-1] == "dict-delta"
        assert lay.dict_table  # the exact repeats keep the table paying
        with_dd = _family_pass_choice(
            _pool_records(layout, logics), layout, allowed, {}
        )
        without_dd = _family_pass_choice(
            _pool_records(layout, logics), layout,
            [c for c in allowed if c.name != "dict-delta"], {},
        )
        assert with_dd[0] < without_dd[0]

    def test_dict_delta_roundtrips_through_container(self):
        """The family's dict-delta selection survives the wire."""
        from repro.arch import ArchParams
        from repro.vbs.codecs import registered_codecs
        from repro.vbs.encode import _family_pass
        from repro.vbs.format import VbsLayout

        layout = VbsLayout(ArchParams(channel_width=8), 1, 8, 8)
        logics = self._pool_workload(layout)
        lay, out = _family_pass(
            _pool_records(layout, logics), layout,
            list(registered_codecs()), {},
        )
        vbs = VirtualBitstream(lay, out)
        assert vbs.wire_version == 4
        parsed = VirtualBitstream.from_bits(vbs.to_bits())
        assert [r.codec for r in parsed.records] == [r.codec for r in out]
        assert [r.logic for r in parsed.records] == logics
        assert parsed.to_bits() == vbs.to_bits()

    def test_raw_delta_strictly_wins_on_raw_chain(self):
        """Two near-identical raw clusters: the XOR link between
        consecutive raw frames (and the sparse first frame against the
        all-zero reference) must beat verbatim raw records."""
        from repro.arch import ArchParams
        from repro.utils.bitarray import BitArray
        from repro.vbs.codecs import codec_by_name
        from repro.vbs.encode import _family_selection
        from repro.vbs.format import ClusterRecord, VbsLayout

        layout = VbsLayout(ArchParams(channel_width=8), 1, 8, 8)
        layout = layout.with_wide_tags()
        frames = BitArray(layout.raw_bits_per_cluster)
        for p in range(0, len(frames), 7):
            frames[p] = 1
        frames2 = frames.copy()
        frames2[3] = 1
        recs = [
            ClusterRecord((0, 0), raw=True, raw_frames=frames,
                          codec="raw"),
            ClusterRecord((1, 0), raw=True, raw_frames=frames2,
                          codec="raw"),
        ]
        total, assigns = _family_selection(
            recs, layout, [codec_by_name("raw-delta")], True, {}
        )
        assert assigns == ["raw-delta", "raw-delta"]
        assert total < layout.header_bits + 2 * layout.raw_record_bits

    def test_raw_delta_engages_on_replicated_datapath(self):
        """raw-delta must win records on a pinned eval circuit: the
        replicated datapath at coarse clustering, where near-duplicate
        clusters fall back raw and the consecutive-frame XOR link pays.
        The engaged container still round-trips and decodes identically
        to the family without raw-delta."""
        from repro.arch import ArchParams
        from repro.bitstream import expand_routing
        from repro.cad import run_flow
        from repro.netlist import CircuitSpec, generate_circuit
        from repro.vbs.codecs import registered_codecs

        spec = CircuitSpec(
            "dpath-tile", n_luts=40, n_inputs=8, n_outputs=6,
            pattern_pool=3,
        )
        flow = run_flow(generate_circuit(spec), ArchParams(channel_width=8),
                        seed=1)
        config = expand_routing(
            flow.design, flow.placement, flow.routing, flow.rrg
        )
        full = encode_flow(flow, config, cluster_size=3, codecs="auto")
        assert full.stats.codec_counts.get("raw-delta", 0) > 0
        reduced = encode_flow(
            flow, config, cluster_size=3,
            codecs=[c.name for c in registered_codecs()
                    if c.name != "raw-delta"],
        )
        # Strictly smaller with raw-delta in the family, same decode.
        assert full.size_bits < reduced.size_bits
        a, _ = decode_vbs(VirtualBitstream.from_bits(full.to_bits()))
        b, _ = decode_vbs(reduced)
        assert a.content_equal(b)


class TestFamilyTrialAccounting:
    """The satellite-2 regressions: the sequential selection must cost
    each codec at most once per record and never cost the per-cluster
    pick under a trial layout that cannot carry it."""

    def test_current_pick_costed_once_when_also_in_family(self):
        """``rec.codec`` in the family list used to be costed twice —
        once as the current pick, once as a family candidate.  The
        trial counter pins the dedupe: one record, one overlapping
        codec, exactly one raw fallback → exactly two trials."""
        from repro.arch import ArchParams
        from repro.utils.bitarray import BitArray
        from repro.vbs.codecs import codec_by_name
        from repro.vbs.encode import EncodeStats, _family_selection
        from repro.vbs.format import ClusterRecord, VbsLayout

        layout = VbsLayout(ArchParams(channel_width=8), 1, 8, 8)
        nlb = layout.logic_bits_per_cluster
        logic = BitArray(nlb)
        logic[3] = 1
        rec = ClusterRecord((0, 0), raw=False, logic=logic, pairs=[],
                            codec="delta")
        frames = {(0, 0): BitArray(layout.raw_bits_per_cluster)}
        stats = EncodeStats()
        _total, assigns = _family_selection(
            [rec], layout, [codec_by_name("delta")], True, frames,
            stats=stats,
        )
        # delta (current pick == family member, deduped) + raw fallback.
        assert stats.family_trials == 2
        assert assigns[0] in ("delta", "raw")

    def test_unencodable_current_pick_skipped_under_trial_layout(self):
        """A record whose per-cluster pick was ``dict`` must survive a
        trial layout without the pattern table: the stale pick is
        skipped (not costed, not crashed on) and a family codec wins."""
        from repro.arch import ArchParams
        from repro.utils.bitarray import BitArray
        from repro.vbs.codecs import codec_by_name
        from repro.vbs.encode import EncodeStats, _family_selection
        from repro.vbs.format import ClusterRecord, VbsLayout

        layout = VbsLayout(ArchParams(channel_width=8), 1, 8, 8)
        nlb = layout.logic_bits_per_cluster
        logic = BitArray(nlb)
        logic[3] = 1
        # The pick says "dict", but this trial layout has no table.
        rec = ClusterRecord((0, 0), raw=False, logic=logic, pairs=[],
                            codec="dict")
        stats = EncodeStats()
        _total, assigns = _family_selection(
            [rec], layout, [codec_by_name("delta")], False, {},
            stats=stats,
        )
        assert assigns == ["delta"]
        assert stats.family_trials == 1


class TestFamilyCorrectness:
    def test_decodes_identically_to_pr1(self, small_flow, small_config):
        pr1 = encode_flow(
            small_flow, small_config, cluster_size=1, codecs=PR1_CODECS
        )
        family = encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto"
        )
        a, _ = decode_vbs(VirtualBitstream.from_bits(pr1.to_bits()))
        b, _ = decode_vbs(VirtualBitstream.from_bits(family.to_bits()))
        assert a.content_equal(b)

    def test_container_roundtrip_byte_identical(self, family_vbs):
        bits = family_vbs.to_bits()
        parsed = VirtualBitstream.from_bits(bits)
        assert parsed.source_version == family_vbs.wire_version
        assert parsed.to_bits() == bits
        assert parsed.size_bits == family_vbs.size_bits

    def test_functional_after_roundtrip(
        self, small_flow, small_config, small_netlist
    ):
        family = encode_flow(
            small_flow, small_config, cluster_size=2, codecs="auto"
        )
        cfg, _ = decode_vbs(VirtualBitstream.from_bits(family.to_bits()))
        verify_functional(
            small_netlist, small_flow.design, small_flow.placement, cfg,
            small_flow.fabric, num_vectors=8,
        )

    def test_parallel_encode_byte_identical(self, small_flow, small_config):
        """The sequential family pass runs after the merge, so worker
        count still cannot change the emitted bytes."""
        serial = encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto"
        )
        pooled = encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto",
            workers=4,
        )
        assert serial.to_bits() == pooled.to_bits()

    def test_relocation_invariance(self, family_vbs):
        from repro.vbs import decode_at

        base = decode_at(family_vbs, 0, 0)
        moved = decode_at(family_vbs, 4, 3)
        assert base.translated(4, 3).content_equal(moved)

    def test_decode_stats_codec_split(self, family_vbs):
        _cfg, stats = decode_vbs(family_vbs)
        assert sum(stats.clusters_by_codec.values()) == len(
            family_vbs.records
        )
        assert stats.clusters_by_codec == family_vbs.codec_tags()


class TestFamilyThroughRuntimeCache:
    """VERSION 3 containers through the runtime decode cache."""

    def test_cached_reload_and_relocation(self, small_flow, family_vbs):
        from repro.arch import FabricArch
        from repro.runtime import ExternalMemory, ReconfigurationController

        w = small_flow.fabric.width
        fabric = FabricArch(
            small_flow.params, 2 * w + 2, w + 2,
            {(x, y): "clb" for x in range(2 * w + 2) for y in range(w + 2)},
        )
        ctrl = ReconfigurationController(fabric, ExternalMemory(bus_bits=32))
        ctrl.store_vbs("fam", family_vbs)

        task = ctrl.load_task("fam", (0, 0))
        assert not task.load_cost.cache_hit
        moved = ctrl.migrate_task("fam", (w + 1, 1))
        assert moved.load_cost.cache_hit
        assert moved.load_cost.decode_cycles == 0
        # The relocated expansion equals a direct family decode there.
        direct, _ = decode_vbs(family_vbs, origin=(w + 1, 1))
        for cell in direct.region.cells():
            key = (cell.x, cell.y)
            assert ctrl.config.logic.get(key) == direct.logic.get(key)
            assert ctrl.config.closed.get(key, set()) == direct.closed.get(
                key, set()
            )

    def test_family_selection_subsets(self, small_flow, small_config):
        """Explicit family-only selections still produce valid
        containers (raw remains the guaranteed fallback)."""
        for names in (["delta"], ["dict"], ["golomb", "eliasg"]):
            vbs = encode_flow(
                small_flow, small_config, cluster_size=1, codecs=names
            )
            allowed = set(names) | {"raw"}
            assert set(vbs.stats.codec_counts) <= allowed
            cfg, _ = decode_vbs(VirtualBitstream.from_bits(vbs.to_bits()))
            verify_connectivity(
                small_flow.design, small_flow.placement, cfg,
                small_flow.fabric,
            )
