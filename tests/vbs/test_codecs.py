"""The pluggable cluster-codec registry.

Covers registry lookup/registration rules, per-codec property round-trips
(arbitrary records x every registered codec), size-accounting exactness,
the cost picker, and mixed-codec container round-trips through
``VirtualBitstream.from_bits``.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import ArchParams
from repro.errors import VbsError
from repro.utils.bitarray import BitArray, BitReader, BitWriter
from repro.vbs import (
    VirtualBitstream,
    codec_by_name,
    codec_by_tag,
    pick_codec,
    register_codec,
    registered_codecs,
)
from repro.vbs.codecs import resolve_codecs
from repro.vbs.format import CODEC_TAG_BITS, ClusterRecord, VbsLayout

COMMON = settings(
    deadline=None, max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRegistry:
    def test_builtin_codecs_present(self):
        names = {c.name for c in registered_codecs()}
        assert {
            "list", "raw", "compact", "rle",
            "dict", "delta", "golomb", "eliasg",
        } <= names

    def test_family_tags_above_v2_limit(self):
        from repro.vbs.format import MAX_V2_TAG

        for name in ("dict", "delta", "golomb", "eliasg"):
            assert codec_by_name(name).tag > MAX_V2_TAG
        for name in ("list", "raw", "compact", "rle"):
            assert codec_by_name(name).tag <= MAX_V2_TAG

    def test_lookup_by_name_and_tag_agree(self):
        for codec in registered_codecs():
            assert codec_by_name(codec.name) is codec
            assert codec_by_tag(codec.tag) is codec

    def test_unknown_name_rejected(self):
        with pytest.raises(VbsError):
            codec_by_name("zstd")

    def test_unknown_tag_rejected(self):
        # The VERSION 4 wide tag field opens 32 tags; unregistered ones
        # must still fail loudly.
        from repro.vbs.format import WIDE_CODEC_TAG_BITS

        with pytest.raises(VbsError):
            codec_by_tag((1 << WIDE_CODEC_TAG_BITS) - 1)
        with pytest.raises(VbsError):
            codec_by_tag(1 << WIDE_CODEC_TAG_BITS)

    def test_duplicate_registration_rejected(self):
        existing = registered_codecs()[0]
        with pytest.raises(VbsError):
            register_codec(existing)

    def test_resolve_codecs(self):
        assert resolve_codecs(None) is None
        assert resolve_codecs("auto") == registered_codecs()
        assert [c.name for c in resolve_codecs(["rle", "list"])] == [
            "rle", "list",
        ]


def _layout(draw) -> VbsLayout:
    params = ArchParams(channel_width=draw(st.integers(2, 8)))
    return VbsLayout(
        params,
        draw(st.integers(1, 3)),
        draw(st.integers(2, 10)),
        draw(st.integers(2, 10)),
        compact_logic=draw(st.booleans()),
    )


def _record(draw, layout: VbsLayout, raw: bool) -> ClusterRecord:
    cgw, cgh = layout.cluster_grid
    pos = (draw(st.integers(0, cgw - 1)), draw(st.integers(0, cgh - 1)))
    if raw:
        frames = BitArray(layout.raw_bits_per_cluster)
        for idx in draw(st.lists(
            st.integers(0, layout.raw_bits_per_cluster - 1), max_size=16
        )):
            frames[idx] = 1
        return ClusterRecord(pos, raw=True, raw_frames=frames)
    logic = BitArray(layout.logic_bits_per_cluster)
    for idx in draw(st.lists(
        st.integers(0, layout.logic_bits_per_cluster - 1), max_size=24
    )):
        logic[idx] = 1
    io_limit = layout.params.cluster_io_count(layout.cluster_size)
    n_pairs = draw(st.integers(0, min(8, layout.max_routes)))
    pairs = [
        (draw(st.integers(0, io_limit - 1)), draw(st.integers(0, io_limit - 1)))
        for _ in range(n_pairs)
    ]
    return ClusterRecord(pos, raw=False, logic=logic, pairs=pairs)


class TestCodecRoundTrips:
    """Property: arbitrary records x every registered codec."""

    @COMMON
    @given(st.data())
    def test_every_codec_roundtrips_bit_exactly(self, data):
        layout = _layout(data.draw)
        for codec in registered_codecs():
            rec = _record(data.draw, layout, raw=codec.codes_raw)
            # The dictionary codec only applies when the container's
            # shared table holds the record's pattern; wide-tag codecs
            # only fit the VERSION 4 tag field.
            lay = (
                layout.with_dict_table((rec.logic,))
                if codec.needs_dict else layout
            )
            if codec.wide_tag:
                lay = lay.with_wide_tags()
            assert codec.encodable(rec, lay)
            w = BitWriter()
            codec.encode_record(w, rec, lay)
            bits = w.finish()
            # Declared size = framing + emitted body, exactly.
            assert codec.record_bits(rec, lay) == (
                lay.record_overhead_bits + len(bits)
            )
            back = codec.decode_record(BitReader(bits), rec.pos, lay)
            assert back.codec == codec.name
            assert back.raw == rec.raw
            if codec.codes_raw:
                assert back.raw_frames == rec.raw_frames
            else:
                assert back.logic == rec.logic
                assert back.pairs == rec.pairs

    @COMMON
    @given(st.data())
    def test_mixed_codec_container_roundtrip(self, data):
        layout = _layout(data.draw)
        cgw, cgh = layout.cluster_grid
        count = data.draw(st.integers(0, min(6, cgw * cgh)))
        positions = data.draw(st.lists(
            st.tuples(st.integers(0, cgw - 1), st.integers(0, cgh - 1)),
            min_size=count, max_size=count, unique=True,
        ))
        records = []
        dict_patterns = []
        for pos in sorted(positions, key=lambda p: (p[1], p[0])):
            codec = data.draw(st.sampled_from(registered_codecs()))
            rec = _record(data.draw, layout, raw=codec.codes_raw)
            rec = ClusterRecord(
                pos, raw=rec.raw, logic=rec.logic, pairs=rec.pairs,
                raw_frames=rec.raw_frames, codec=codec.name,
            )
            if codec.needs_dict and rec.logic not in dict_patterns:
                dict_patterns.append(rec.logic)
            records.append(rec)
        if dict_patterns:
            layout = layout.with_dict_table(tuple(dict_patterns))
        from repro.vbs.codecs import codec_by_name

        if any(codec_by_name(r.codec).wide_tag for r in records):
            layout = layout.with_wide_tags()
        vbs = VirtualBitstream(layout, records)
        bits = vbs.to_bits()
        assert len(bits) == vbs.container_bits
        parsed = VirtualBitstream.from_bits(bits)
        assert parsed.source_version == vbs.wire_version
        assert [r.codec for r in parsed.records] == [
            r.codec for r in records
        ]
        assert parsed.size_bits == vbs.size_bits
        # Re-encoding the parse is byte-identical (normalized records,
        # and the raster state walk is reproducible).
        assert parsed.to_bits() == bits


class TestCostPicker:
    def _smart_record(self, layout, logic_bits=(), n_pairs=0):
        logic = BitArray(layout.logic_bits_per_cluster)
        for idx in logic_bits:
            logic[idx] = 1
        return ClusterRecord(
            (0, 0), raw=False, logic=logic, pairs=[(0, 1)] * n_pairs
        )

    def test_picker_minimizes_bits(self):
        layout = VbsLayout(ArchParams(channel_width=8), 1, 8, 8)
        rec = self._smart_record(layout, logic_bits=[0], n_pairs=2)
        smart = [
            c for c in registered_codecs()
            if not c.codes_raw and c.encodable(rec, layout)
        ]
        best = pick_codec(rec, layout, smart)
        sizes = {c.name: c.record_bits(rec, layout) for c in smart}
        assert sizes[best.name] == min(sizes.values())

    def test_sparse_logic_prefers_rle_among_pr1_codecs(self):
        layout = VbsLayout(ArchParams(channel_width=8), 1, 8, 8)
        rec = self._smart_record(layout, logic_bits=[3], n_pairs=1)
        smart = [codec_by_name(n) for n in ("list", "compact", "rle")]
        assert pick_codec(rec, layout, smart).name == "rle"

    def test_sparse_logic_prefers_gap_coding_in_full_family(self):
        # A single set bit costs one short gap code — the Golomb/Elias
        # family must undercut the fixed 8-bit chunking of `rle`.
        layout = VbsLayout(ArchParams(channel_width=8), 1, 8, 8)
        rec = self._smart_record(layout, logic_bits=[3], n_pairs=1)
        smart = [
            c for c in registered_codecs()
            if not c.codes_raw and c.encodable(rec, layout)
        ]
        best = pick_codec(rec, layout, smart)
        assert best.name in {"golomb", "eliasg", "delta"}
        assert best.record_bits(rec, layout) < codec_by_name(
            "rle"
        ).record_bits(rec, layout)

    def test_dense_logic_prefers_list(self):
        layout = VbsLayout(ArchParams(channel_width=8), 1, 8, 8)
        rec = self._smart_record(
            layout, logic_bits=range(layout.logic_bits_per_cluster), n_pairs=1
        )
        smart = [codec_by_name(n) for n in ("list", "compact", "rle")]
        assert pick_codec(rec, layout, smart).name == "list"

    def test_no_applicable_codec_raises(self):
        layout = VbsLayout(ArchParams(channel_width=8), 1, 8, 8)
        raw_only = [codec_by_name("raw")]
        rec = self._smart_record(layout)
        with pytest.raises(VbsError):
            pick_codec(rec, layout, raw_only)


class TestRecordCodecConsistency:
    def test_codec_raw_mismatch_rejected(self):
        layout = VbsLayout(ArchParams(channel_width=8), 1, 8, 8)
        rec = ClusterRecord(
            (0, 0), raw=False, logic=BitArray(layout.logic_bits_per_cluster),
            pairs=[], codec="raw",
        )
        with pytest.raises(VbsError):
            rec.validate(layout)

    def test_legacy_default_codec_names(self):
        params = ArchParams(channel_width=8)
        plain = VbsLayout(params, 1, 8, 8)
        compact = VbsLayout(params, 1, 8, 8, compact_logic=True)
        rec = ClusterRecord(
            (0, 0), raw=False, logic=BitArray(plain.logic_bits_per_cluster),
            pairs=[],
        )
        assert rec.codec_name(plain) == "list"
        assert rec.codec_name(compact) == "compact"
        raw_rec = ClusterRecord(
            (0, 0), raw=True, raw_frames=BitArray(plain.raw_bits_per_cluster)
        )
        assert raw_rec.codec_name(plain) == "raw"
