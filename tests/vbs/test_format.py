"""Table I field widths and size accounting."""

import pytest

from repro.arch import ArchParams
from repro.errors import VbsError
from repro.utils.bitarray import BitArray
from repro.vbs.format import CODEC_TAG_BITS, ClusterRecord, VbsLayout


class TestLayout:
    def test_paper_m_bits(self, params5):
        layout = VbsLayout(params5, 1, 10, 10)
        assert layout.m_bits == 5  # Section II-B worked example

    def test_dim_bits_table1(self, params5):
        # ceil(log2(max(w, h))) per Table I.
        assert VbsLayout(params5, 1, 35, 35).dim_bits == 6
        assert VbsLayout(params5, 1, 79, 79).dim_bits == 7

    def test_cluster_grid_partial(self, params5):
        layout = VbsLayout(params5, 3, 10, 7)
        assert layout.cluster_grid == (4, 3)
        # The corner cluster covers only macro (9, 6): one member.
        assert layout.valid_members(3, 2) == [(0, 0)]
        # An east-edge cluster keeps its full column height.
        assert layout.valid_members(3, 0) == [(0, 0), (0, 1), (0, 2)]

    def test_valid_members_full_cluster(self, params5):
        layout = VbsLayout(params5, 2, 10, 10)
        assert layout.valid_members(0, 0) == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_record_sizes(self, params5):
        layout = VbsLayout(params5, 1, 10, 10)
        smart = layout.smart_record_bits(4)
        overhead = 2 * layout.pos_bits + CODEC_TAG_BITS
        expected = overhead + layout.route_count_bits + 65 + 4 * 10
        assert layout.record_overhead_bits == overhead
        assert smart == expected
        assert layout.raw_record_bits == (
            overhead + layout.route_count_bits + 284
        )

    def test_break_even(self, params5):
        layout = VbsLayout(params5, 1, 10, 10)
        # (Nraw - NLB) / 2M = (284-65)/10 = 21 pairs after the logic field.
        assert layout.record_break_even_pairs() == 21

    def test_sentinel_is_all_ones(self, params5):
        layout = VbsLayout(params5, 1, 10, 10)
        assert layout.raw_sentinel == (1 << layout.route_count_bits) - 1
        assert layout.max_routes == layout.raw_sentinel - 1

    def test_rejects_degenerate(self, params5):
        with pytest.raises(VbsError):
            VbsLayout(params5, 1, 0, 5)
        with pytest.raises(VbsError):
            VbsLayout(params5, 0, 5, 5)


class TestClusterRecord:
    def _layout(self, params5):
        return VbsLayout(params5, 1, 8, 8)

    def test_smart_record_validates(self, params5):
        layout = self._layout(params5)
        rec = ClusterRecord(
            (2, 3), raw=False, logic=BitArray(65), pairs=[(0, 5), (0, 27 - 5)]
        )
        rec.validate(layout)

    def test_bad_position_rejected(self, params5):
        layout = self._layout(params5)
        rec = ClusterRecord((9, 0), raw=False, logic=BitArray(65), pairs=[])
        with pytest.raises(VbsError):
            rec.validate(layout)

    def test_bad_logic_size_rejected(self, params5):
        layout = self._layout(params5)
        rec = ClusterRecord((0, 0), raw=False, logic=BitArray(64), pairs=[])
        with pytest.raises(VbsError):
            rec.validate(layout)

    def test_endpoint_range_checked(self, params5):
        layout = self._layout(params5)
        rec = ClusterRecord(
            (0, 0), raw=False, logic=BitArray(65), pairs=[(0, 99)]
        )
        with pytest.raises(VbsError):
            rec.validate(layout)

    def test_raw_record_needs_frames(self, params5):
        layout = self._layout(params5)
        rec = ClusterRecord((0, 0), raw=True, raw_frames=BitArray(284))
        rec.validate(layout)
        bad = ClusterRecord((0, 0), raw=True, raw_frames=BitArray(10))
        with pytest.raises(VbsError):
            bad.validate(layout)

    def test_size_accounting(self, params5):
        layout = self._layout(params5)
        smart = ClusterRecord(
            (0, 0), raw=False, logic=BitArray(65), pairs=[(0, 1)] * 3
        )
        assert smart.size_bits(layout) == layout.smart_record_bits(3)
        raw = ClusterRecord((0, 0), raw=True, raw_frames=BitArray(284))
        assert raw.size_bits(layout) == layout.raw_record_bits
