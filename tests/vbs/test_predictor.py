"""The feature→codec predictor: keys, store, and the encode contract.

The load-bearing guarantees, in increasing strength:

* feature extraction is a deterministic pure function of
  (record, layout, pool bucket) — identical under ``REPRO_NO_NUMPY=1``;
* the store round-trips through JSON tolerantly (missing/corrupt files
  restore nothing, loads merge);
* an encode under a **cold** store is byte-identical to the exhaustive
  family pass — the predictor never guesses without evidence, and wins
  recorded mid-encode teach the *next* session only;
* a **warm** replay of the corpus the store was warmed on is
  byte-identical with measurably fewer codec trials — the acceptance
  criterion of the whole subsystem;
* a **poisoned** store cannot change the bytes: verify-and-fallback
  re-runs the full trial whenever the store's pick loses the shortlist.
"""

import json

import pytest

from repro.arch import ArchParams
from repro.utils.bitarray import BitArray
from repro.vbs import CodecPredictor, cluster_key, encode_flow, pool_entropy_bucket
from repro.vbs.format import ClusterRecord, VbsLayout
from repro.vbs.predictor import STORE_VERSION, _one_blocks


def _bits(n, positions):
    arr = BitArray(n)
    for p in positions:
        arr[p] = 1
    return arr


@pytest.fixture(scope="module")
def layout(params8):
    return VbsLayout(params8, 1, 8, 8)


class TestFeatureExtraction:
    """Keys are pinned: a drift silently invalidates every saved store."""

    def test_smart_record_key_pinned(self, layout):
        nlb = layout.logic_bits_per_cluster
        rec = ClusterRecord((0, 0), raw=False,
                            logic=_bits(nlb, [2, 3, 4, 9, 17]),
                            pairs=[(0, 3), (1, 1)], codec="list")
        assert cluster_key(rec, layout, pool_bucket=4) == "s1.2.2.15.4.00"
        # A dictionary table one bit away moves only the distance field.
        pattern = rec.logic.copy()
        pattern[40] = 1
        with_table = layout.with_dict_table((pattern,))
        assert cluster_key(rec, with_table, 4) == "s1.2.2.1.4.00"
        # Wide tags and a raw option move only the regime suffix.
        key = cluster_key(rec, layout.with_wide_tags(), 4, has_frames=True)
        assert key == "s1.2.2.15.4.11"

    def test_raw_record_key_pinned(self, layout):
        rec = ClusterRecord(
            (1, 0), raw=True,
            raw_frames=_bits(layout.raw_bits_per_cluster, [0, 50, 51, 52]),
            codec="raw",
        )
        assert cluster_key(rec, layout, pool_bucket=0) == "r0.2.0.15.0.01"

    def test_one_blocks_matches_naive_reference(self, layout):
        """The run-structure feature against a string-scan reference,
        over a deterministic sweep of bit patterns."""
        n = layout.logic_bits_per_cluster
        sweeps = [
            [], [0], [n - 1], list(range(n)),
            [0, 1, 2, 10, 11, 40], [2, 4, 6, 8], [5, 6, 7, 20, 21, 60],
        ]
        # A multiplicative-congruential scatter keeps the sweep
        # deterministic without an RNG import.
        sweeps.append(sorted({(17 * k + 3) % n for k in range(25)}))
        for positions in sweeps:
            field = _bits(n, positions)
            naive = "".join(
                "1" if field[i] else "0" for i in range(n)
            ).split("0")
            assert _one_blocks(field) == sum(1 for run in naive if run)

    def test_keys_identical_across_backends(self, layout):
        """The key function must not depend on the bit-kernel backend;
        this file also runs under REPRO_NO_NUMPY=1 in CI, where these
        exact strings are re-asserted."""
        n = layout.logic_bits_per_cluster
        expected = {
            (): "s0.0.0.15.0.00",
            (0,): "s0.1.0.15.0.00",
            (0, 1, 2): "s0.1.0.15.0.00",
            (3, 9, 40, 44): "s0.3.0.15.0.00",
            tuple(range(0, n, 2)): "s8.6.0.15.0.00",
        }
        for positions, key in expected.items():
            rec = ClusterRecord((0, 0), raw=False,
                                logic=_bits(n, list(positions)),
                                pairs=[], codec="list")
            assert cluster_key(rec, layout, 0) == key, positions

    def test_pool_entropy_bucket(self, layout):
        n = layout.logic_bits_per_cluster
        a, b = _bits(n, [1]), _bits(n, [2])
        mk = lambda logic, i: ClusterRecord(
            (i, 0), raw=False, logic=logic.copy(), pairs=[], codec="list"
        )
        assert pool_entropy_bucket([]) == 0
        assert pool_entropy_bucket([mk(a, 0), mk(a, 1)]) == 4
        assert pool_entropy_bucket([mk(a, 0), mk(b, 1)]) == 8
        assert pool_entropy_bucket(
            [mk(a, 0), mk(a, 1), mk(a, 2), mk(b, 3)]
        ) == 4
        # Raw records are invisible to the pool proxy.
        raw = ClusterRecord((9, 0), raw=True,
                            raw_frames=_bits(layout.raw_bits_per_cluster, []),
                            codec="raw")
        assert pool_entropy_bucket([mk(a, 0), raw]) == 8


class TestStore:
    def test_record_and_shortlist_ordering(self):
        pred = CodecPredictor()
        assert pred.shortlist("k") is None
        assert pred.predict("k") is None
        pred.record("k", "delta")
        pred.record("k", "dict")
        pred.record("k", "dict")
        assert pred.shortlist("k") == ["dict", "delta"]
        assert pred.predict("k") == "dict"
        # Ties break by name, deterministically.
        pred.record("k", "delta")
        assert pred.shortlist("k") == ["delta", "dict"]
        assert len(pred) == 1
        assert pred.samples == 4

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError, match="margin"):
            CodecPredictor(margin_bits=-1)

    def test_save_load_roundtrip(self, tmp_path):
        pred = CodecPredictor()
        pred.record("a", "delta")
        pred.record("a", "delta")
        pred.record("b", "rle")
        path = tmp_path / "store.json"
        pred.save(path)
        fresh = CodecPredictor()
        assert fresh.load(path) == 2
        assert fresh.shortlist("a") == ["delta"]
        assert fresh.samples == 3
        # Loading again merges (win counts add up).
        assert fresh.load(path) == 2
        assert fresh.samples == 6

    def test_load_tolerates_missing_and_corrupt(self, tmp_path):
        pred = CodecPredictor()
        assert pred.load(tmp_path / "nope.json") == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert pred.load(bad) == 0
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps(
            {"version": STORE_VERSION + 1, "cells": {"a": {"delta": 1}}}
        ))
        assert pred.load(wrong) == 0
        junk = tmp_path / "junk.json"
        junk.write_text(json.dumps(
            {"version": STORE_VERSION,
             "cells": {"a": "oops", "b": {"rle": "x", "dict": 2}}}
        ))
        # Non-dict cells are skipped, non-int wins dropped.
        assert pred.load(junk) == 1
        assert pred.shortlist("b") == ["dict"]
        assert len(pred) == 1

    def test_session_freeze_semantics(self):
        """Wins recorded inside a session are invisible to shortlists
        until the next ``begin_session`` — the property the cold
        byte-identity proof stands on."""
        pred = CodecPredictor()
        pred.record("old", "rle")
        pred.begin_session()
        pred.record("new", "delta")
        pred.record("old", "dict")
        pred.record("old", "dict")
        assert pred.shortlist("new") is None          # cold this session
        assert pred.shortlist("old") == ["rle"]       # pre-session view
        pred.begin_session()
        assert pred.shortlist("new") == ["delta"]
        assert pred.shortlist("old") == ["dict", "rle"]

    def test_snapshot_digest(self):
        pred = CodecPredictor()
        pred.record("a", "delta")
        pred.hits, pred.misses, pred.fallbacks = 3, 2, 1
        assert pred.snapshot() == {
            "cells": 1, "samples": 1, "hits": 3, "misses": 2,
            "fallbacks": 1,
        }


class TestEncodeContract:
    """The predictor through ``encode_flow``: byte identity, fewer trials."""

    @pytest.fixture(scope="class")
    def exhaustive(self, small_flow, small_config):
        return encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto"
        )

    def test_cold_store_is_exhaustive_bit_for_bit(
        self, small_flow, small_config, exhaustive
    ):
        cold = CodecPredictor()
        vbs = encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto",
            predictor=cold,
        )
        assert vbs.to_bits() == exhaustive.to_bits()
        # Every selection ran the full trial: same count, nothing
        # shortlisted away.
        assert vbs.stats.family_trials == exhaustive.stats.family_trials
        assert vbs.stats.family_trials_skipped == 0
        assert cold.hits == 0
        assert len(cold) > 0  # ...but the store did learn.

    def test_warm_replay_byte_identical_with_fewer_trials(
        self, small_flow, small_config, exhaustive
    ):
        pred = CodecPredictor()
        encode_flow(small_flow, small_config, cluster_size=1, codecs="auto",
                    predictor=pred)
        pred.hits = pred.misses = pred.fallbacks = 0
        warm = encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto",
            predictor=pred,
        )
        assert warm.to_bits() == exhaustive.to_bits()
        assert warm.stats.family_trials < exhaustive.stats.family_trials
        assert warm.stats.family_trials_skipped > 0
        assert pred.hits > 0
        assert pred.misses == 0  # every key was seen during warm-up
        # The conservation law: trials run + trials skipped = the
        # exhaustive count.
        assert (
            warm.stats.family_trials + warm.stats.family_trials_skipped
            == exhaustive.stats.family_trials
        )

    def test_warm_store_replays_through_save_load(
        self, small_flow, small_config, exhaustive, tmp_path
    ):
        pred = CodecPredictor()
        encode_flow(small_flow, small_config, cluster_size=1, codecs="auto",
                    predictor=pred)
        path = tmp_path / "predictor.json"
        pred.save(path)
        reloaded = CodecPredictor()
        assert reloaded.load(path) == len(pred)
        vbs = encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto",
            predictor=reloaded,
        )
        assert vbs.to_bits() == exhaustive.to_bits()
        assert vbs.stats.family_trials < exhaustive.stats.family_trials

    def test_monotone_chain_extends_to_warm_predictor(
        self, small_flow, small_config
    ):
        """The monotonicity ladder gains a rung: warm-predictor auto is
        byte-identical to auto, so it inherits auto ≤ V3 set ≤ PR-1
        set — never larger than the per-cluster stateless pick."""
        from repro.vbs import V3_CODECS

        pred = CodecPredictor()
        encode_flow(small_flow, small_config, cluster_size=2, codecs="auto",
                    predictor=pred)
        warm = encode_flow(
            small_flow, small_config, cluster_size=2, codecs="auto",
            predictor=pred,
        )
        v3 = encode_flow(
            small_flow, small_config, cluster_size=2,
            codecs=list(V3_CODECS),
        )
        pr1 = encode_flow(
            small_flow, small_config, cluster_size=2,
            codecs=["list", "raw", "compact", "rle"],
        )
        assert warm.size_bits <= v3.size_bits <= pr1.size_bits

    def test_poisoned_store_cannot_change_bytes(
        self, small_flow, small_config, exhaustive
    ):
        """Verify-and-fallback: a store whose recorded winners are never
        on the table (a codec name from a different registry vintage,
        say) must cost full re-trials, not bytes — the predicted pick is
        absent from every costed shortlist, which is an automatic
        fallback."""
        pred = CodecPredictor()
        encode_flow(small_flow, small_config, cluster_size=1, codecs="auto",
                    predictor=pred)
        poisoned = CodecPredictor()
        for key in list(pred._cells):
            poisoned.record(key, "retired-codec")
        vbs = encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto",
            predictor=poisoned,
        )
        assert vbs.to_bits() == exhaustive.to_bits()
        assert poisoned.fallbacks > 0

    def test_margin_still_byte_identical_on_warmed_corpus(
        self, small_flow, small_config, exhaustive
    ):
        """A non-zero verify margin only tolerates upsets *within* the
        shortlist; replaying the warmed corpus the true winner is in
        the shortlist, so the bytes still cannot move."""
        pred = CodecPredictor(margin_bits=4)
        encode_flow(small_flow, small_config, cluster_size=1, codecs="auto",
                    predictor=pred)
        warm = encode_flow(
            small_flow, small_config, cluster_size=1, codecs="auto",
            predictor=pred,
        )
        assert warm.to_bits() == exhaustive.to_bits()
