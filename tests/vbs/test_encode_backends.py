"""Encode-pipeline backends: byte identity, pickling, shared memo.

The container a design encodes to must not depend on *how* the pipeline
ran — serial, thread pool, or process pool must emit identical bytes for
every codec selection (the offline/online feedback-loop contract says
decode success is a function of the emitted list, so a backend-dependent
container would be a correctness bug, not a performance detail).
"""

import pickle

import pytest

from repro.errors import VbsError
from repro.vbs.devirt import DecodeMemo
from repro.vbs.encode import (
    PROCESS_CHUNKS_PER_WORKER,
    ClusterWorkItem,
    EncodeContext,
    _chunk_work_items,
    _encode_cluster,
    encode_flow,
)

#: The matrix of the byte-identity guarantee: the paper-strict default,
#: the full cost-driven picker, and the two container-level codecs that
#: exercise the sequential family pass (held-back raw frames included).
CODEC_SELECTIONS = [
    None,
    "auto",
    ("dict", "list", "raw"),
    ("delta", "list", "raw"),
]


def _ids(val):
    return "paper" if val is None else str(val)


class TestByteIdenticalBackends:
    @pytest.mark.parametrize("codecs", CODEC_SELECTIONS, ids=_ids)
    def test_serial_thread_process_agree(self, tiny_flow, tiny_config,
                                         codecs):
        serial = encode_flow(
            tiny_flow, tiny_config, cluster_size=2, codecs=codecs
        )
        thread = encode_flow(
            tiny_flow, tiny_config, cluster_size=2, codecs=codecs,
            workers=3, backend="thread",
        )
        process = encode_flow(
            tiny_flow, tiny_config, cluster_size=2, codecs=codecs,
            workers=2, backend="process",
        )
        blob = serial.to_bits().to_bytes()
        assert thread.to_bits().to_bytes() == blob
        assert process.to_bits().to_bytes() == blob
        # Deterministic merge: the stats that describe the *container*
        # (not memo luck) agree too.
        for vbs in (thread, process):
            assert vbs.stats.clusters_listed == serial.stats.clusters_listed
            assert vbs.stats.clusters_raw == serial.stats.clusters_raw
            assert vbs.stats.codec_counts == serial.stats.codec_counts

    def test_process_backend_cluster1(self, tiny_flow, tiny_config):
        serial = encode_flow(tiny_flow, tiny_config, cluster_size=1,
                             codecs="auto")
        process = encode_flow(tiny_flow, tiny_config, cluster_size=1,
                              codecs="auto", workers=2, backend="process")
        assert process.to_bits().to_bytes() == serial.to_bits().to_bytes()

    def test_unknown_backend_rejected(self, tiny_flow, tiny_config):
        with pytest.raises(VbsError):
            encode_flow(tiny_flow, tiny_config, workers=2, backend="mpi")

    def test_backend_ignored_without_workers(self, tiny_flow, tiny_config):
        # workers=None never spawns a pool, whatever the backend says.
        vbs = encode_flow(tiny_flow, tiny_config, backend="process")
        assert vbs.to_bits().to_bytes() == encode_flow(
            tiny_flow, tiny_config
        ).to_bits().to_bytes()


class TestProcessChunking:
    """The process backend schedules chunked work items (chunksize > 1):
    one executor submission per chunk instead of one per cluster, with
    the flattened chunk sequence exactly the raster-order item list."""

    def test_chunks_batch_and_preserve_order(self):
        items = list(range(37))  # the chunker never inspects items
        chunks = _chunk_work_items(items, workers=4)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) < len(items)          # chunksize > 1
        sizes = {len(chunk) for chunk in chunks}
        assert max(sizes) == -(-37 // (4 * PROCESS_CHUNKS_PER_WORKER))
        assert _chunk_work_items([], workers=4) == []
        # Tiny inputs degrade to one item per chunk, never zero chunks.
        assert [x for c in _chunk_work_items([1, 2], 8) for x in c] == [1, 2]

    def test_fewer_submissions_and_byte_identity(
        self, tiny_flow, tiny_config, monkeypatch
    ):
        import concurrent.futures as cf

        submissions = []
        real_executor = cf.ProcessPoolExecutor

        class CountingExecutor(real_executor):
            def submit(self, fn, *args, **kwargs):
                submissions.append(fn)
                return super().submit(fn, *args, **kwargs)

        monkeypatch.setattr(cf, "ProcessPoolExecutor", CountingExecutor)
        workers = 2
        pooled = encode_flow(
            tiny_flow, tiny_config, cluster_size=1, codecs="auto",
            workers=workers, backend="process",
        )
        serial = encode_flow(
            tiny_flow, tiny_config, cluster_size=1, codecs="auto"
        )
        assert pooled.to_bits().to_bytes() == serial.to_bits().to_bytes()
        n_items = serial.stats.clusters_listed
        expected = -(-n_items // max(
            1, -(-n_items // (workers * PROCESS_CHUNKS_PER_WORKER))
        ))
        assert len(submissions) == expected
        assert len(submissions) < n_items


class TestWorkItemPickling:
    def _context_and_item(self, tiny_flow):
        from repro.vbs.format import VbsLayout

        layout = VbsLayout(
            tiny_flow.params, 2, tiny_flow.fabric.width,
            tiny_flow.fabric.height,
        )
        from repro.utils.bitarray import BitArray

        item = ClusterWorkItem(
            pos=(1, 0),
            pairs=((0, 5), (3, 2)),
            logic=BitArray(layout.logic_bits_per_cluster),
            valid_members=tuple(layout.valid_members(1, 0)),
        )
        ctx = EncodeContext(
            layout=layout, codec_names="auto", max_orders=12, order_seed=0
        )
        return ctx, item

    def test_work_item_roundtrips(self, tiny_flow):
        ctx, item = self._context_and_item(tiny_flow)
        clone = pickle.loads(pickle.dumps(item))
        assert clone == item

    def test_context_roundtrips(self, tiny_flow):
        ctx, _item = self._context_and_item(tiny_flow)
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.layout == ctx.layout
        assert clone.codec_names == ctx.codec_names

    def test_outcome_roundtrips(self, tiny_flow):
        ctx, item = self._context_and_item(tiny_flow)
        outcome = _encode_cluster(item, ctx, DecodeMemo())
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.pos == outcome.pos
        assert clone.orders_tried == outcome.orders_tried
        assert (clone.record is None) == (outcome.record is None)
        if outcome.record is not None:
            assert clone.record.pairs == outcome.record.pairs
            assert clone.record.logic == outcome.record.logic


class TestSharedMemoSweep:
    def test_cross_invocation_reuse(self, tiny_flow, tiny_config):
        memo = DecodeMemo()
        first = encode_flow(tiny_flow, tiny_config, cluster_size=1,
                            memo=memo)
        second = encode_flow(tiny_flow, tiny_config, cluster_size=1,
                             memo=memo)
        assert second.stats.decode_reuse_hits >= first.stats.decode_reuse_hits
        assert second.stats.decode_reuse_hits > 0
        assert second.to_bits().to_bytes() == first.to_bits().to_bytes()

    def test_shared_memo_does_not_change_bytes_across_sizes(
        self, tiny_flow, tiny_config
    ):
        memo = DecodeMemo()
        swept = [
            encode_flow(tiny_flow, tiny_config, cluster_size=c, memo=memo)
            for c in (1, 2)
        ]
        fresh = [
            encode_flow(tiny_flow, tiny_config, cluster_size=c)
            for c in (1, 2)
        ]
        for a, b in zip(swept, fresh):
            assert a.to_bits().to_bytes() == b.to_bits().to_bytes()

    def test_bounded_memo_refreshes_on_hit(self):
        # LRU, not FIFO: a re-used entry must outlive colder ones.
        from repro.arch import ArchParams, get_cluster_model

        model = get_cluster_model(ArchParams(channel_width=5), 1)
        memo = DecodeMemo(max_entries=2)
        memo.decode(model, [(0, 5)])
        memo.decode(model, [(1, 6)])
        memo.decode(model, [(0, 5)])   # refresh the older entry
        memo.decode(model, [(2, 7)])   # evicts (1, 6), not (0, 5)
        _result, reused = memo.decode(model, [(0, 5)])
        assert reused
        assert len(memo) == 2

class TestPersistedMemo:
    """DecodeMemo save/load: warm starts across processes, bytes pinned.

    The persisted memo mirrors the decode cache's contract one layer
    down: version-stamped, corrupt-tolerant, restored entries skip the
    router replay but can never change the emitted container (the
    router is deterministic; the memo only short-circuits it).
    """

    def _encode(self, tiny_flow, tiny_config, memo, path, **kwargs):
        return encode_flow(
            tiny_flow, tiny_config, cluster_size=1, codecs="auto",
            memo=memo, memo_path=str(path), **kwargs,
        )

    def test_cold_run_writes_versioned_file(self, tiny_flow, tiny_config,
                                            tmp_path):
        import pickle

        from repro.vbs.devirt import MEMO_FILE_FORMAT

        path = tmp_path / "memo.pkl"
        self._encode(tiny_flow, tiny_config, DecodeMemo(), path)
        payload = pickle.loads(path.read_bytes())
        assert payload["format"] == MEMO_FILE_FORMAT
        assert len(payload["entries"]) > 0

    def test_warm_start_bytes_identical_and_hits_grow(
        self, tiny_flow, tiny_config, tmp_path
    ):
        path = tmp_path / "memo.pkl"
        cold_memo = DecodeMemo()
        cold = self._encode(tiny_flow, tiny_config, cold_memo, path)
        warm_memo = DecodeMemo()
        warm = self._encode(tiny_flow, tiny_config, warm_memo, path)
        assert warm.to_bits().to_bytes() == cold.to_bits().to_bytes()
        assert warm_memo.restored > 0
        # Every decode the cold run routed is replayed from the file.
        assert warm_memo.hits > cold_memo.hits
        assert warm_memo.misses == 0

    @pytest.mark.parametrize("backend,workers", [
        ("thread", 3), ("process", 2),
    ])
    def test_pooled_backends_unchanged_by_restored_memo(
        self, tiny_flow, tiny_config, tmp_path, backend, workers
    ):
        path = tmp_path / "memo.pkl"
        baseline = encode_flow(
            tiny_flow, tiny_config, cluster_size=1, codecs="auto"
        )
        self._encode(tiny_flow, tiny_config, DecodeMemo(), path)  # seed it
        pooled = self._encode(
            tiny_flow, tiny_config, DecodeMemo(), path,
            workers=workers, backend=backend,
        )
        assert pooled.to_bits().to_bytes() == baseline.to_bits().to_bytes()

    def test_process_run_merges_worker_deltas(
        self, tiny_flow, tiny_config, tmp_path
    ):
        import pickle

        path = tmp_path / "memo.pkl"
        # Cold process run: every persisted entry was discovered inside
        # a pool worker and merged on exit.
        self._encode(
            tiny_flow, tiny_config, DecodeMemo(), path,
            workers=2, backend="process",
        )
        payload = pickle.loads(path.read_bytes())
        assert len(payload["entries"]) > 0
        # The merged file warms a subsequent serial run completely.
        warm_memo = DecodeMemo()
        self._encode(tiny_flow, tiny_config, warm_memo, path)
        assert warm_memo.restored > 0
        assert warm_memo.misses == 0
        # No merge scratch directory is left behind.
        assert list(tmp_path.glob("memo-merge-*")) == []

    def test_process_run_never_loses_entries(
        self, tiny_flow, tiny_config, tmp_path
    ):
        import pickle

        path = tmp_path / "memo.pkl"
        self._encode(tiny_flow, tiny_config, DecodeMemo(), path)
        before = dict(pickle.loads(path.read_bytes())["entries"])
        self._encode(
            tiny_flow, tiny_config, DecodeMemo(), path,
            workers=2, backend="process",
        )
        after = dict(pickle.loads(path.read_bytes())["entries"])
        # The parent folds its own warm start and the worker deltas into
        # one file: everything the serial run persisted must survive.
        assert set(before) <= set(after)

    def test_stale_foreign_delta_never_merged(self, tmp_path):
        # Regression: the merge-on-exit fold globbed *every*
        # ``worker-*.pkl`` in the scratch directory, so a delta left by
        # a crashed earlier run was silently folded into this run's
        # memo.  Deltas are now stamped with a per-run id and the fold
        # ignores foreign (or unstamped pre-run-id) files.
        from repro.arch import ArchParams, get_cluster_model
        from repro.vbs.encode import _merge_worker_deltas

        model = get_cluster_model(ArchParams(channel_width=5), 1)
        stale = DecodeMemo()
        stale.decode(model, [(0, 5)])
        assert stale.dump_delta(tmp_path / "worker-deadbeef-41.pkl",
                                frozenset(), run_id="deadbeef") == 1
        unstamped = DecodeMemo()
        unstamped.decode(model, [(1, 6)])
        assert unstamped.dump_delta(tmp_path / "worker-42.pkl",
                                    frozenset()) == 1
        fresh = DecodeMemo()
        fresh.decode(model, [(2, 7)])
        assert fresh.dump_delta(tmp_path / "worker-cafe-43.pkl",
                                frozenset(), run_id="cafe") == 1

        memo = DecodeMemo()
        assert _merge_worker_deltas(memo, tmp_path, "cafe") == 1
        _res, reused = memo.decode(model, [(2, 7)])
        assert reused  # this run's delta was folded
        _res, stale_hit = memo.decode(model, [(0, 5)])
        assert not stale_hit  # the crashed run's delta was not

    def test_load_rejects_foreign_run_stamp(self, tmp_path):
        from repro.arch import ArchParams, get_cluster_model

        model = get_cluster_model(ArchParams(channel_width=5), 1)
        src = DecodeMemo()
        src.decode(model, [(0, 5)])
        path = tmp_path / "worker-abc-7.pkl"
        src.dump_delta(path, frozenset(), run_id="abc")
        assert DecodeMemo().load(path, run_id="other") == 0
        assert DecodeMemo().load(path, run_id="abc") == 1
        # run-agnostic loads (the plain persisted-memo path) still fold.
        assert DecodeMemo().load(path) == 1

    def test_corrupt_memo_file_tolerated(self, tiny_flow, tiny_config,
                                         tmp_path):
        path = tmp_path / "memo.pkl"
        path.write_bytes(b"not a pickle")
        memo = DecodeMemo()
        vbs = self._encode(tiny_flow, tiny_config, memo, path)
        assert memo.restored == 0
        baseline = encode_flow(
            tiny_flow, tiny_config, cluster_size=1, codecs="auto"
        )
        assert vbs.to_bits().to_bytes() == baseline.to_bits().to_bytes()
        # The run repaired the file on its way out.
        memo2 = DecodeMemo()
        self._encode(tiny_flow, tiny_config, memo2, path)
        assert memo2.restored > 0

    def test_wrong_format_version_ignored(self, tmp_path):
        import pickle

        path = tmp_path / "memo.pkl"
        path.write_bytes(pickle.dumps({"format": 999, "entries": []}))
        memo = DecodeMemo()
        assert memo.load(path) == 0

    def test_load_respects_bound_and_existing_keys(self, tmp_path):
        from repro.arch import ArchParams, get_cluster_model

        model = get_cluster_model(ArchParams(channel_width=5), 1)
        big = DecodeMemo()
        big.decode(model, [(0, 5)])
        big.decode(model, [(1, 6)])
        big.decode(model, [(2, 7)])
        path = tmp_path / "memo.pkl"
        assert big.save(path) == 3
        # A bounded memo restores only into its free room, preferring
        # the file's MRU tail.
        bounded = DecodeMemo(max_entries=2)
        assert bounded.load(path) == 2
        assert len(bounded) == 2
        _res, reused = bounded.decode(model, [(2, 7)])  # the MRU entry
        assert reused
        # A live entry is never overwritten by a restore.
        fresh = DecodeMemo()
        fresh.decode(model, [(0, 5)])
        assert fresh.load(path) == 2  # the shared key is skipped
        assert len(fresh) == 3

    def test_load_never_displaces_live_entries(self, tmp_path):
        from repro.arch import ArchParams, get_cluster_model

        model = get_cluster_model(ArchParams(channel_width=5), 1)
        stale = DecodeMemo()
        stale.decode(model, [(1, 6)])
        stale.decode(model, [(2, 7)])
        path = tmp_path / "memo.pkl"
        stale.save(path)
        # A full bounded memo keeps its (fresher) live entries; the
        # file restores nothing rather than evicting them.
        live = DecodeMemo(max_entries=1)
        live.decode(model, [(0, 5)])
        assert live.load(path) == 0
        _res, reused = live.decode(model, [(0, 5)])
        assert reused
        assert len(live) == 1

    def test_task_scope_encode_with_memo_path(self, tiny_flow, tiny_config,
                                              tmp_path):
        from repro.vbs.encode import encode_task

        path = tmp_path / "memo.pkl"
        jobs = [(tiny_flow, tiny_config)] * 2
        cold = encode_task(jobs, dict_id=3, codecs="auto",
                           memo_path=str(path))
        warm_memo = DecodeMemo()
        warm = encode_task(jobs, dict_id=3, codecs="auto", memo=warm_memo,
                           memo_path=str(path))
        assert warm_memo.restored > 0
        for a, b in zip(cold.containers, warm.containers):
            assert a.to_bits().to_bytes() == b.to_bits().to_bytes()


class TestSharedMemoSweepRaces:
    def test_bounded_memo_hits_survive_thread_races(self):
        # Hits refresh recency by pop+reinsert; a racing eviction must
        # cost at most a lost refresh, never a KeyError — the thread
        # backend shares one memo across all workers.
        from concurrent.futures import ThreadPoolExecutor

        from repro.arch import ArchParams, get_cluster_model
        from repro.errors import DevirtualizationError

        model = get_cluster_model(ArchParams(channel_width=5), 1)
        memo = DecodeMemo(max_entries=2)
        churn = [[(0, 5)], [(1, 6)], [(2, 7)], [(3, 8)]]

        def hammer(worker: int) -> None:
            for n in range(300):
                try:
                    memo.decode(model, churn[(worker + n) % len(churn)])
                except DevirtualizationError:
                    pass  # an unroutable churn pair is fine here

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        assert len(memo) <= 2
