"""Golden-vector regression tests for the container wire format.

Small canned ``.vbs`` byte strings for VERSION 1, 2 and 3 containers,
checked in as hex.  Both directions are pinned: the encoder must emit
these exact bytes for the canonical record sets, and the decoder must
recover the exact pre-encode fields from them.  Any drift in field
widths, field order, codec bodies, the dictionary section, or the
raster state walk fails loudly here before it can corrupt containers
already written to external memory.

When a change *intentionally* alters the wire format, it must bump the
container version and add a new golden vector — never rewrite an old
one: old vectors are the promise that existing containers stay
readable.
"""

import pytest

from repro.arch import ArchParams
from repro.errors import VbsError
from repro.utils.bitarray import BitArray, BitWriter
from repro.vbs.encode import VirtualBitstream
from repro.vbs.format import (
    CHANNEL_BITS,
    CLUSTER_BITS,
    CODEC_TAG_BITS,
    COMPACT_BITS,
    DIM_BITS,
    LUT_BITS,
    MAGIC,
    MAGIC_BITS,
    VERSION_BITS,
    ClusterRecord,
    VbsLayout,
)

#: Canonical containers: one 4x2-macro task at the paper's worked-example
#: architecture (W = 5, 6-LUT), cluster size 1.
GOLDEN_V1 = (
    "b510415800080005a4050200000000000001014624f8000000000000000000000000"
    "0000000000000000000000000000000000000000000001"
)
GOLDEN_V2 = (
    "b520415800080005a60cb02030146243f00000000000000000000000000000000000"
    "0000000000000000000000000000000000032860040000000000000084"
)
GOLDEN_V3 = "b530415800080004008820000000400000350208014a0041546106a47221ef0028"
GOLDEN_V4 = (
    "b5404158000800040000006a02043249fc17e8224480081ee03e80000000000000"
    "000000000010000000000000000000000000000000000000000000001a01810000"
    "000000000000a0"
)
GOLDEN_V4_SHARED = "b5404158000800040013a60410028404a40020a8"
#: The shared-dictionary id and table GOLDEN_V4_SHARED references.
SHARED_ID = 9
#: The codec-frontier additions (dict-delta, raw-delta) in one VERSION 4
#: container: a near-miss dictionary reference plus a raw-delta chain.
GOLDEN_V4_FRONTIER = (
    "b540415800080004000000882000000040000034c142020b4024580a011b95804064"
    "80"
)


def _bits_with(n, positions):
    arr = BitArray(n)
    for p in positions:
        arr[p] = 1
    return arr


@pytest.fixture(scope="module")
def layout(params5):
    return VbsLayout(params5, 1, 4, 2)


def _v1_records(layout):
    nlb = layout.logic_bits_per_cluster
    nraw = layout.raw_bits_per_cluster
    return [
        ClusterRecord((0, 0), raw=False, logic=_bits_with(nlb, [0, 7, 64]),
                      pairs=[(0, 5), (3, 2)]),
        ClusterRecord((1, 0), raw=True,
                      raw_frames=_bits_with(nraw, [0, 283])),
    ]


def _v2_records(layout):
    nlb = layout.logic_bits_per_cluster
    nraw = layout.raw_bits_per_cluster
    return [
        ClusterRecord((0, 0), raw=False, logic=_bits_with(nlb, [0, 7, 64]),
                      pairs=[(0, 5), (3, 2)], codec="rle"),
        ClusterRecord((1, 0), raw=True,
                      raw_frames=_bits_with(nraw, [0, 283]), codec="raw"),
        ClusterRecord((2, 1), raw=False, logic=_bits_with(nlb, [10]),
                      pairs=[(1, 1)], codec="compact"),
    ]


def _v3_layout_and_records(layout):
    nlb = layout.logic_bits_per_cluster
    pattern = _bits_with(nlb, [3, 9, 40])
    lay = layout.with_dict_table((pattern,))
    records = [
        ClusterRecord((0, 0), raw=False, logic=pattern.copy(),
                      pairs=[(0, 1)], codec="dict"),
        ClusterRecord((1, 0), raw=False,
                      logic=_bits_with(nlb, [3, 9, 40, 41]),
                      pairs=[], codec="delta"),
        ClusterRecord((2, 0), raw=False, logic=_bits_with(nlb, [5, 6, 20]),
                      pairs=[(2, 3)], codec="golomb"),
        ClusterRecord((3, 1), raw=False, logic=_bits_with(nlb, [1]),
                      pairs=[], codec="eliasg"),
    ]
    return lay, records


def _v4_layout_and_records(layout):
    nlb = layout.logic_bits_per_cluster
    nraw = layout.raw_bits_per_cluster
    lay = layout.with_wide_tags()
    records = [
        ClusterRecord((0, 0), raw=False,
                      logic=_bits_with(nlb, [2, 5, 9, 30, 33, 60]),
                      pairs=[(1, 2)], codec="rice-a"),
        ClusterRecord((1, 0), raw=False,
                      logic=_bits_with(nlb, [2, 5, 9, 30, 33, 61]),
                      pairs=[], codec="delta-k"),
        ClusterRecord((2, 0), raw=True,
                      raw_frames=_bits_with(nraw, [1, 100]), codec="raw"),
        ClusterRecord((3, 1), raw=False, logic=_bits_with(nlb, [0, 7]),
                      pairs=[(0, 5)], codec="list"),
    ]
    return lay, records


def _v4_shared_layout_and_records(layout):
    nlb = layout.logic_bits_per_cluster
    pattern = _bits_with(nlb, [3, 9, 40])
    lay = layout.with_shared_dict(SHARED_ID, (pattern,))
    records = [
        ClusterRecord((0, 0), raw=False, logic=pattern.copy(),
                      pairs=[(0, 1)], codec="dict"),
        ClusterRecord((1, 0), raw=False, logic=pattern.copy(),
                      pairs=[], codec="dict"),
        ClusterRecord((2, 1), raw=False,
                      logic=_bits_with(nlb, [3, 9, 40, 41]),
                      pairs=[], codec="delta-k"),
    ]
    return lay, records


def _v4_frontier_layout_and_records(layout):
    nlb = layout.logic_bits_per_cluster
    nraw = layout.raw_bits_per_cluster
    pattern = _bits_with(nlb, [3, 9, 40])
    lay = layout.with_dict_table((pattern,)).with_wide_tags()
    records = [
        # One extra set bit off the dictionary pattern: a dict-delta
        # reference (index + 1-bit XOR residue).
        ClusterRecord((0, 0), raw=False,
                      logic=_bits_with(nlb, [3, 9, 40, 44]),
                      pairs=[(0, 2)], codec="dict-delta"),
        # A raw-delta chain: the first record deltas against the
        # all-zero reference, the second against the first's frames.
        ClusterRecord((1, 0), raw=True,
                      raw_frames=_bits_with(nraw, [0, 283]),
                      codec="raw-delta"),
        ClusterRecord((2, 1), raw=True,
                      raw_frames=_bits_with(nraw, [0, 200, 283]),
                      codec="raw-delta"),
    ]
    return lay, records


def _assert_same_fields(parsed, expected):
    assert len(parsed) == len(expected)
    for a, b in zip(parsed, expected):
        assert a.pos == b.pos
        assert a.raw == b.raw
        if b.raw:
            assert a.raw_frames == b.raw_frames
        else:
            assert a.logic == b.logic
            assert a.pairs == b.pairs


class TestGoldenEncode:
    """The encoder must reproduce the canned bytes bit for bit."""

    def test_v1_bytes_exact(self, layout):
        vbs = VirtualBitstream(layout, _v1_records(layout))
        assert vbs.to_bits(version=1).to_bytes().hex() == GOLDEN_V1

    def test_v2_bytes_exact(self, layout):
        vbs = VirtualBitstream(layout, _v2_records(layout))
        assert vbs.wire_version == 2
        assert vbs.to_bits(version=2).to_bytes().hex() == GOLDEN_V2
        assert vbs.to_bits().to_bytes().hex() == GOLDEN_V2  # default = auto

    def test_v3_bytes_exact(self, layout):
        lay, records = _v3_layout_and_records(layout)
        vbs = VirtualBitstream(lay, records)
        assert vbs.wire_version == 3
        assert vbs.to_bits().to_bytes().hex() == GOLDEN_V3

    def test_v4_bytes_exact(self, layout):
        lay, records = _v4_layout_and_records(layout)
        vbs = VirtualBitstream(lay, records)
        assert vbs.wire_version == 4
        assert vbs.to_bits().to_bytes().hex() == GOLDEN_V4
        assert len(vbs.to_bits()) == vbs.container_bits

    def test_v4_frontier_bytes_exact(self, layout):
        lay, records = _v4_frontier_layout_and_records(layout)
        vbs = VirtualBitstream(lay, records)
        assert vbs.wire_version == 4
        assert vbs.to_bits().to_bytes().hex() == GOLDEN_V4_FRONTIER
        assert len(vbs.to_bits()) == vbs.container_bits

    def test_v4_shared_bytes_exact(self, layout):
        lay, records = _v4_shared_layout_and_records(layout)
        vbs = VirtualBitstream(lay, records)
        assert vbs.wire_version == 4
        assert vbs.to_bits().to_bytes().hex() == GOLDEN_V4_SHARED
        assert len(vbs.to_bits()) == vbs.container_bits
        # The shared table is *not* embedded: the same records with an
        # embedded table cost a full pattern more on the wire.
        embedded = VirtualBitstream(
            layout.with_dict_table(lay.dict_table).with_wide_tags(), [
                ClusterRecord(r.pos, raw=False, logic=r.logic.copy(),
                              pairs=list(r.pairs), codec=r.codec)
                for r in records
            ],
        )
        assert embedded.container_bits > vbs.container_bits


class TestGoldenDecode:
    """The canned bytes must decode to the exact pre-encode fields."""

    def test_v1_fields_exact(self, layout):
        vbs = VirtualBitstream.from_bits(
            BitArray.from_bytes(bytes.fromhex(GOLDEN_V1))
        )
        assert vbs.source_version == 1
        assert vbs.layout.cluster_size == 1
        assert (vbs.layout.width, vbs.layout.height) == (4, 2)
        _assert_same_fields(vbs.records, _v1_records(layout))
        # Legacy records resolve to the implicit codec names.
        assert [r.codec for r in vbs.records] == ["list", "raw"]
        # And the archival re-encode is byte-identical.
        assert vbs.to_bits(version=1).to_bytes().hex() == GOLDEN_V1

    def test_v2_fields_exact(self, layout):
        vbs = VirtualBitstream.from_bits(
            BitArray.from_bytes(bytes.fromhex(GOLDEN_V2))
        )
        assert vbs.source_version == 2
        _assert_same_fields(vbs.records, _v2_records(layout))
        assert [r.codec for r in vbs.records] == ["rle", "raw", "compact"]
        assert vbs.to_bits().to_bytes().hex() == GOLDEN_V2

    def test_v3_fields_exact(self, layout):
        lay, records = _v3_layout_and_records(layout)
        vbs = VirtualBitstream.from_bits(
            BitArray.from_bytes(bytes.fromhex(GOLDEN_V3))
        )
        assert vbs.source_version == 3
        assert vbs.layout.dict_table == lay.dict_table
        # Dictionary references and delta residues expand back to the
        # exact pre-encode logic fields (normalization contract).
        _assert_same_fields(vbs.records, records)
        assert [r.codec for r in vbs.records] == [
            "dict", "delta", "golomb", "eliasg",
        ]
        assert vbs.to_bits().to_bytes().hex() == GOLDEN_V3


    def test_v4_fields_exact(self, layout):
        lay, records = _v4_layout_and_records(layout)
        vbs = VirtualBitstream.from_bits(
            BitArray.from_bytes(bytes.fromhex(GOLDEN_V4))
        )
        assert vbs.source_version == 4
        assert vbs.layout.tag_bits == lay.tag_bits
        assert vbs.layout.shared_dict_id is None
        _assert_same_fields(vbs.records, records)
        assert [r.codec for r in vbs.records] == [
            "rice-a", "delta-k", "raw", "list",
        ]
        assert vbs.to_bits().to_bytes().hex() == GOLDEN_V4

    def test_v4_frontier_fields_exact(self, layout):
        lay, records = _v4_frontier_layout_and_records(layout)
        vbs = VirtualBitstream.from_bits(
            BitArray.from_bytes(bytes.fromhex(GOLDEN_V4_FRONTIER))
        )
        assert vbs.source_version == 4
        assert vbs.layout.dict_table == lay.dict_table
        # The dict-delta residue and both raw-delta links expand back to
        # the exact pre-encode fields (normalization contract).
        _assert_same_fields(vbs.records, records)
        assert [r.codec for r in vbs.records] == [
            "dict-delta", "raw-delta", "raw-delta",
        ]
        assert vbs.to_bits().to_bytes().hex() == GOLDEN_V4_FRONTIER

    def test_v4_shared_fields_exact(self, layout):
        lay, records = _v4_shared_layout_and_records(layout)
        vbs = VirtualBitstream.from_bits(
            BitArray.from_bytes(bytes.fromhex(GOLDEN_V4_SHARED)),
            shared_dicts={SHARED_ID: lay.dict_table},
        )
        assert vbs.source_version == 4
        assert vbs.layout.shared_dict_id == SHARED_ID
        assert vbs.layout.dict_table == lay.dict_table
        _assert_same_fields(vbs.records, records)
        assert vbs.to_bits().to_bytes().hex() == GOLDEN_V4_SHARED
        # A callable resolver works too (the runtime controller's path).
        again = VirtualBitstream.from_bits(
            BitArray.from_bytes(bytes.fromhex(GOLDEN_V4_SHARED)),
            shared_dicts=lambda i: lay.dict_table if i == SHARED_ID else None,
        )
        assert again.to_bits().to_bytes().hex() == GOLDEN_V4_SHARED

    def test_v4_shared_without_resolver_rejected(self):
        bits = BitArray.from_bytes(bytes.fromhex(GOLDEN_V4_SHARED))
        with pytest.raises(VbsError, match="shared dictionary"):
            VirtualBitstream.from_bits(bits)
        with pytest.raises(VbsError, match="unknown"):
            VirtualBitstream.from_bits(bits, shared_dicts={SHARED_ID + 1: ()})


class TestVersionGates:
    """Safe rejection across format generations."""

    def test_future_version_rejected(self):
        data = bytearray(bytes.fromhex(GOLDEN_V1))
        data[1] = (data[1] & 0x0F) | 0x50  # version nibble -> 5 (future)
        with pytest.raises(VbsError, match="version"):
            VirtualBitstream.from_bits(BitArray.from_bytes(bytes(data)))

    def test_family_codec_cannot_write_v2(self, layout):
        lay, records = _v3_layout_and_records(layout)
        vbs = VirtualBitstream(lay, records)
        with pytest.raises(VbsError, match="version 3"):
            vbs.to_bits(version=2)
        with pytest.raises(VbsError):
            vbs.to_bits(version=1)

    def test_v2_container_with_family_tag_rejected(self, params5):
        # Hand-craft a VERSION 2 container whose first record claims the
        # delta tag — a correct VERSION 2 reader must refuse before it
        # touches the record body.
        lay = VbsLayout(params5, 1, 4, 2)
        w = BitWriter()
        w.write(MAGIC, MAGIC_BITS)
        w.write(2, VERSION_BITS)
        w.write(lay.cluster_size, CLUSTER_BITS)
        w.write(lay.params.channel_width, CHANNEL_BITS)
        w.write(lay.params.lut_size, LUT_BITS)
        w.write(0, COMPACT_BITS)
        w.write(lay.width, DIM_BITS)
        w.write(lay.height, DIM_BITS)
        w.write(lay.width - 1, lay.dim_bits)
        w.write(lay.height - 1, lay.dim_bits)
        w.write(1, lay.count_bits)
        w.write(0, lay.pos_bits)
        w.write(0, lay.pos_bits)
        w.write(5, CODEC_TAG_BITS)  # delta: a VERSION 3 codec
        with pytest.raises(VbsError, match="VERSION 3"):
            VirtualBitstream.from_bits(w.finish())

    def test_v1_cannot_carry_tagged_codec(self, layout):
        vbs = VirtualBitstream(layout, _v2_records(layout))
        with pytest.raises(VbsError, match="VERSION 1"):
            vbs.to_bits(version=1)

    def test_unsupported_write_version_rejected(self, layout):
        vbs = VirtualBitstream(layout, _v1_records(layout))
        with pytest.raises(VbsError):
            vbs.to_bits(version=5)

    def test_wide_codec_cannot_write_v3_or_below(self, layout):
        lay, records = _v4_layout_and_records(layout)
        vbs = VirtualBitstream(lay, records)
        for version in (1, 2, 3):
            with pytest.raises(VbsError):
                vbs.to_bits(version=version)

    def test_shared_dict_cannot_write_v3_or_below(self, layout):
        lay, records = _v4_shared_layout_and_records(layout)
        vbs = VirtualBitstream(lay, records)
        for version in (1, 2, 3):
            with pytest.raises(VbsError):
                vbs.to_bits(version=version)

    def test_wide_codec_rejected_on_narrow_layout(self, layout):
        """The wide-tag guard mirrors the VERSION 2 tag gate: a codec
        whose tag does not fit the 3-bit field cannot join a narrow
        container."""
        nlb = layout.logic_bits_per_cluster
        rec = ClusterRecord((0, 0), raw=False, logic=_bits_with(nlb, [1]),
                            pairs=[], codec="rice-a")
        with pytest.raises(VbsError, match="VERSION 4"):
            VirtualBitstream(layout, [rec])

    def test_v4_container_with_unknown_tag_rejected(self, params5):
        # A VERSION 4 container claiming an unregistered 5-bit tag must
        # be refused before the record body is touched.
        from repro.vbs.format import SHARED_DICT_ID_BITS, DICT_COUNT_BITS

        lay = VbsLayout(params5, 1, 4, 2)
        w = BitWriter()
        w.write(MAGIC, MAGIC_BITS)
        w.write(4, VERSION_BITS)
        w.write(lay.cluster_size, CLUSTER_BITS)
        w.write(lay.params.channel_width, CHANNEL_BITS)
        w.write(lay.params.lut_size, LUT_BITS)
        w.write(0, COMPACT_BITS)
        w.write(lay.width, DIM_BITS)
        w.write(lay.height, DIM_BITS)
        w.write(0, SHARED_DICT_ID_BITS)
        w.write(0, DICT_COUNT_BITS)
        w.write(lay.width - 1, lay.dim_bits)
        w.write(lay.height - 1, lay.dim_bits)
        w.write(1, lay.count_bits)
        w.write(0, lay.pos_bits)
        w.write(0, lay.pos_bits)
        w.write(31, 5)  # unregistered wide tag
        with pytest.raises(VbsError, match="unknown codec tag"):
            VirtualBitstream.from_bits(w.finish())

    def test_corrupted_gap_count_raises_vbs_error(self, layout):
        """A gap-coded record whose count field claims more set bits than
        the logic field holds must fail as a wire-format error, not an
        internal IndexError."""
        lay, _records = _v3_layout_and_records(layout)
        nlb = lay.logic_bits_per_cluster
        w = BitWriter()
        w.write(MAGIC, MAGIC_BITS)
        w.write(3, VERSION_BITS)
        w.write(lay.cluster_size, CLUSTER_BITS)
        w.write(lay.params.channel_width, CHANNEL_BITS)
        w.write(lay.params.lut_size, LUT_BITS)
        w.write(0, COMPACT_BITS)
        w.write(lay.width, DIM_BITS)
        w.write(lay.height, DIM_BITS)
        w.write(0, 10)  # empty dictionary section (DICT_COUNT_BITS)
        w.write(lay.width - 1, lay.dim_bits)
        w.write(lay.height - 1, lay.dim_bits)
        w.write(1, lay.count_bits)
        w.write(0, lay.pos_bits)
        w.write(0, lay.pos_bits)
        w.write(7, CODEC_TAG_BITS)           # eliasg
        w.write(0, lay.route_count_bits)
        count_bits = (nlb + 1 - 1).bit_length()
        w.write((1 << count_bits) - 1, count_bits)  # count > NLB
        for _ in range(2 * nlb):
            w.write(1, 1)                    # gaps of 1, then overrun
        with pytest.raises(VbsError):
            VirtualBitstream.from_bits(w.finish(), params=layout.params)


class TestCrossVersionConformance:
    """Every codec x every writable container version round-trips; every
    unwritable pair raises the documented rejection.

    The version gates under test: VERSION 1 carries only the implicit
    legacy codings, VERSION 2 tops out at ``MAX_V2_TAG``, VERSION 3 at
    ``MAX_V3_TAG`` (and owns the dictionary section), VERSION 4 carries
    everything (any stream may be up-converted to it).  A build that
    reads only versions <= 3 rejects VERSION 4 streams at the version
    field — the same gate ``test_future_version_rejected`` pins one
    generation up.
    """

    def _stream_for(self, codec, params):
        """A one-record stream exercising ``codec`` plus its layout."""
        compact = codec.name == "compact"
        lay = VbsLayout(params, 1, 4, 2, compact_logic=compact)
        nlb = lay.logic_bits_per_cluster
        if codec.codes_raw:
            rec = ClusterRecord(
                (0, 0), raw=True,
                raw_frames=_bits_with(lay.raw_bits_per_cluster, [0, 9]),
                codec=codec.name,
            )
        else:
            rec = ClusterRecord(
                (0, 0), raw=False, logic=_bits_with(nlb, [1, 8, 30]),
                pairs=[(0, 3)], codec=codec.name,
            )
        if codec.needs_dict:
            lay = lay.with_dict_table((rec.logic,))
        if codec.wide_tag:
            lay = lay.with_wide_tags()
        return lay, [rec]

    def _writable_versions(self, codec, lay):
        if codec.wide_tag:
            return {4}
        if codec.tag > 3 or lay.dict_table:  # MAX_V2_TAG
            return {3, 4}
        legacy = {1} if codec.name in ("list", "raw", "compact") else set()
        return legacy | {2, 3, 4}

    def test_matrix(self, params5):
        from repro.vbs.codecs import registered_codecs

        for codec in registered_codecs():
            lay, records = self._stream_for(codec, params5)
            vbs = VirtualBitstream(lay, records)
            writable = self._writable_versions(codec, lay)
            for version in (1, 2, 3, 4):
                if version not in writable:
                    with pytest.raises(VbsError):
                        vbs.to_bits(version=version)
                    continue
                bits = vbs.to_bits(version=version)
                parsed = VirtualBitstream.from_bits(bits)
                assert parsed.source_version == version, codec.name
                _assert_same_fields(parsed.records, records)
                # Re-encoding the parse at the same version is the
                # identity on bytes.
                assert parsed.to_bits(version=version) == bits, (
                    codec.name, version,
                )

    def test_matrix_covers_every_codec_and_version(self):
        from repro.vbs.codecs import registered_codecs
        from repro.vbs.format import SUPPORTED_VERSIONS

        names = {c.name for c in registered_codecs()}
        assert {"list", "raw", "compact", "rle", "dict", "delta",
                "golomb", "eliasg", "rice-a", "delta-k",
                "dict-delta", "raw-delta"} <= names
        assert SUPPORTED_VERSIONS == (1, 2, 3, 4)
