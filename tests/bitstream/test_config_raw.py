"""FabricConfig and the raw bitstream format."""

import pytest

from repro.bitstream import FabricConfig, RawBitstream
from repro.errors import BitstreamError
from repro.utils.bitarray import BitArray
from repro.utils.geometry import Rect


class TestFabricConfig:
    def test_empty_by_default(self, params5):
        cfg = FabricConfig(params5, Rect(0, 0, 3, 3))
        assert cfg.is_empty_macro(1, 1)
        assert cfg.occupied_cells() == set()

    def test_logic_size_enforced(self, params5):
        cfg = FabricConfig(params5, Rect(0, 0, 2, 2))
        with pytest.raises(BitstreamError):
            cfg.set_logic(0, 0, BitArray(7))

    def test_switch_offset_bounds(self, params5):
        cfg = FabricConfig(params5, Rect(0, 0, 2, 2))
        cfg.close_switch(0, 0, 0)
        cfg.close_switch(0, 0, params5.routing_bits - 1)
        with pytest.raises(BitstreamError):
            cfg.close_switch(0, 0, params5.routing_bits)

    def test_region_bounds(self, params5):
        cfg = FabricConfig(params5, Rect(1, 1, 2, 2))
        with pytest.raises(BitstreamError):
            cfg.close_switch(0, 0, 0)
        cfg.close_switch(2, 2, 5)  # inside

    def test_macro_frame_layout(self, params5):
        cfg = FabricConfig(params5, Rect(0, 0, 1, 1))
        logic = BitArray(params5.nlb)
        logic[0] = 1
        cfg.set_logic(0, 0, logic)
        cfg.close_switch(0, 0, 3)
        frame = cfg.macro_frame(0, 0)
        assert len(frame) == params5.nraw
        assert frame[0] == 1
        assert frame[params5.nlb + 3] == 1
        assert frame.count() == 2

    def test_translated_preserves_content(self, params5):
        cfg = FabricConfig(params5, Rect(0, 0, 2, 2))
        cfg.close_switch(1, 0, 9)
        moved = cfg.translated(3, 4)
        assert moved.region == Rect(3, 4, 2, 2)
        assert 9 in moved.closed[(4, 4)]
        assert cfg.content_equal(moved)

    def test_content_equal_detects_difference(self, params5):
        a = FabricConfig(params5, Rect(0, 0, 2, 2))
        b = FabricConfig(params5, Rect(0, 0, 2, 2))
        a.close_switch(0, 0, 1)
        assert not a.content_equal(b)
        b.close_switch(0, 0, 1)
        assert a.content_equal(b)

    def test_zero_logic_is_empty(self, params5):
        cfg = FabricConfig(params5, Rect(0, 0, 1, 1))
        cfg.set_logic(0, 0, BitArray(params5.nlb))
        assert cfg.is_empty_macro(0, 0)


class TestRawBitstream:
    def test_size_formula(self, params5):
        # Figure 4 baseline: w * h * Nraw.
        assert RawBitstream.size_for(params5, 10, 10) == 100 * 284

    def test_from_config_roundtrip(self, tiny_config):
        raw = RawBitstream.from_config(tiny_config)
        assert raw.size_bits == (
            tiny_config.region.w * tiny_config.region.h
            * tiny_config.params.nraw
        )
        back = raw.to_config()
        assert tiny_config.content_equal(back)

    def test_frame_access(self, tiny_config):
        raw = RawBitstream.from_config(tiny_config)
        x, y = sorted(tiny_config.occupied_cells())[0]
        assert raw.frame(x, y) == tiny_config.macro_frame(x, y)

    def test_set_frame(self, params5):
        raw = RawBitstream(params5, 2, 2, BitArray(4 * params5.nraw))
        frame = BitArray(params5.nraw)
        frame[0] = 1
        raw.set_frame(1, 1, frame)
        assert raw.frame(1, 1)[0] == 1
        assert raw.frame(0, 0).count() == 0

    def test_wrong_length_rejected(self, params5):
        with pytest.raises(BitstreamError):
            RawBitstream(params5, 2, 2, BitArray(7))

    def test_frame_bounds(self, params5):
        raw = RawBitstream(params5, 2, 2, BitArray(4 * params5.nraw))
        with pytest.raises(BitstreamError):
            raw.frame(2, 0)

    def test_to_config_at_origin(self, tiny_config):
        raw = RawBitstream.from_config(tiny_config)
        moved = raw.to_config(origin=(5, 6))
        assert moved.region.x == 5 and moved.region.y == 6
        assert tiny_config.content_equal(moved)
