"""Track-to-junction expansion invariants."""

import pytest

from repro.bitstream import expand_routing
from repro.bitstream.expand import edge_junction_cell, wire_sb_cells
from repro.fabric import verify_connectivity


class TestHelpers:
    def test_wire_sb_cells(self, tiny_flow):
        rrg = tiny_flow.rrg
        cells = wire_sb_cells(rrg, rrg.xtrk(1, 1, 0))
        assert cells == [(1, 1), (2, 1)]
        cells = wire_sb_cells(rrg, rrg.ytrk(2, 1, 3))
        assert cells == [(2, 1), (2, 2)]

    def test_wire_sb_cells_fabric_edge(self, tiny_flow):
        rrg = tiny_flow.rrg
        w = rrg.fabric.width
        cells = wire_sb_cells(rrg, rrg.xtrk(w - 1, 0, 0))
        assert cells == [(w - 1, 0)]

    def test_edge_junction_line(self, tiny_flow):
        rrg = tiny_flow.rrg
        ln = rrg.line(2, 2, 0)
        trk = rrg.xtrk(2, 2, 1)
        assert edge_junction_cell(rrg, ln, trk) == (2, 2)

    def test_edge_junction_sb(self, tiny_flow):
        rrg = tiny_flow.rrg
        a = rrg.xtrk(1, 2, 3)
        b = rrg.xtrk(2, 2, 3)
        assert edge_junction_cell(rrg, a, b) == (2, 2)
        c = rrg.ytrk(2, 1, 3)
        assert edge_junction_cell(rrg, b, c) == (2, 2)

    def test_pin_lines_have_no_sb(self, tiny_flow):
        from repro.errors import BitstreamError

        rrg = tiny_flow.rrg
        with pytest.raises(BitstreamError):
            wire_sb_cells(rrg, rrg.line(0, 0, 0))


class TestExpansion:
    def test_connectivity_realized(self, tiny_flow, tiny_config):
        verify_connectivity(
            tiny_flow.design, tiny_flow.placement, tiny_config, tiny_flow.fabric
        )

    def test_larger_design_connectivity(self, small_flow, small_config):
        verify_connectivity(
            small_flow.design,
            small_flow.placement,
            small_config,
            small_flow.fabric,
        )

    def test_logic_installed_for_all_blocks(self, small_flow, small_config):
        for clb in small_flow.design.clbs:
            x, y, _ = small_flow.placement.site_of(clb.name)
            assert (x, y) in small_config.logic

    def test_switches_only_where_nets_run(self, small_flow, small_config):
        # Macros far from any routed net must stay empty.
        used = set(small_config.closed)
        assert used, "expansion produced no switches at all"
        all_cells = {
            (p.x, p.y) for p in small_flow.fabric.cells()
        }
        assert used < all_cells

    def test_expansion_deterministic(self, small_flow, small_config):
        again = expand_routing(
            small_flow.design,
            small_flow.placement,
            small_flow.routing,
            small_flow.rrg,
        )
        assert small_config.content_equal(again)
