"""Command-line front-ends and the exception hierarchy."""

import pytest

from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_specific_parents(self):
        assert issubclass(errors.UnroutableError, errors.RoutingError)
        assert issubclass(errors.DevirtualizationError, errors.VbsError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.BitstreamError("boom")


class TestVbsgenCli:
    @pytest.mark.integration
    def test_vbsgen_on_blif(self, tmp_path, capsys):
        from repro.cli import main_vbsgen

        blif = tmp_path / "demo.blif"
        blif.write_text(
            ".model demo\n.inputs a b\n.outputs x y\n"
            ".names a b x\n11 1\n.names a b y\n10 1\n01 1\n.end\n"
        )
        out = tmp_path / "demo.vbs"
        raw = tmp_path / "demo.raw"
        rc = main_vbsgen(
            [str(blif), "-o", str(out), "-W", "8", "--raw-output", str(raw)]
        )
        assert rc == 0
        assert out.exists() and out.stat().st_size > 0
        assert raw.exists() and raw.stat().st_size > 0
        captured = capsys.readouterr().out
        assert "VirtualBitstream" in captured
        # The VBS file must be smaller than the raw file.
        assert out.stat().st_size < raw.stat().st_size

    @pytest.mark.integration
    def test_vbsgen_default_output_and_cluster(self, tmp_path):
        from repro.cli import main_vbsgen

        blif = tmp_path / "c2.blif"
        blif.write_text(
            ".model c2\n.inputs a b c\n.outputs z\n"
            ".names a b c z\n111 1\n000 1\n.end\n"
        )
        rc = main_vbsgen([str(blif), "-W", "8", "-c", "2"])
        assert rc == 0
        assert (tmp_path / "c2.vbs").exists()

    def test_vbsgen_unknown_codec_exits_2_before_cad(self, tmp_path,
                                                     capsys):
        """A typo'd --codecs name must fail in milliseconds with a
        friendly exit 2, not traceback after minutes of CAD flow."""
        from repro.cli import main_vbsgen

        blif = tmp_path / "c3.blif"
        blif.write_text(
            ".model c3\n.inputs a\n.outputs z\n.names a z\n1 1\n.end\n"
        )
        rc = main_vbsgen([str(blif), "-W", "8", "--codecs", "lzma"])
        assert rc == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "lzma" in captured.err
        # The flow never ran: no container was written.
        assert not (tmp_path / "c3.vbs").exists()

    @pytest.mark.integration
    def test_vbsgen_predictor_store_roundtrip(self, tmp_path, capsys):
        """--predictor-store warms a store on the first run and replays
        it on the second: same bytes out, fewer trials, file updated."""
        import json

        from repro.cli import main_vbsgen

        blif = tmp_path / "p1.blif"
        blif.write_text(
            ".model p1\n.inputs a b\n.outputs x y\n"
            ".names a b x\n11 1\n.names a b y\n10 1\n01 1\n.end\n"
        )
        out = tmp_path / "p1.vbs"
        store = tmp_path / "predictor.json"
        rc = main_vbsgen([
            str(blif), "-o", str(out), "-W", "8", "--codecs", "auto",
            "--predictor-store", str(store),
        ])
        assert rc == 0
        assert store.exists()
        payload = json.loads(store.read_text())
        assert payload["cells"]
        cold_bytes = out.read_bytes()
        first = capsys.readouterr().out
        assert "predictor:" in first

        rc = main_vbsgen([
            str(blif), "-o", str(out), "-W", "8", "--codecs", "auto",
            "--predictor-store", str(store),
        ])
        assert rc == 0
        assert out.read_bytes() == cold_bytes
        assert "predictor:" in capsys.readouterr().out


class TestReproCli:
    @pytest.mark.integration
    def test_vbs_inspect(self, tmp_path, capsys):
        from repro.cli import main

        blif = tmp_path / "demo.blif"
        blif.write_text(
            ".model demo\n.inputs a b\n.outputs x y\n"
            ".names a b x\n11 1\n.names a b y\n10 1\n01 1\n.end\n"
        )
        out = tmp_path / "demo.vbs"
        rc = main([
            "vbsgen", str(blif), "-o", str(out), "-W", "8",
            "--codecs", "auto", "--workers", "2",
        ])
        assert rc == 0
        capsys.readouterr()

        rc = main(["vbs", "inspect", str(out), "--per-cluster"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "prelude:" in text
        assert "codec" in text
        assert "compression ratio:" in text
        # Per-cluster rows name registered codecs.
        assert "'list'" in text or "'rle'" in text

    @pytest.mark.integration
    def test_vbs_inspect_json_schema(self, tmp_path, capsys):
        """--json output keys are a tooling contract: additions are fine,
        renames/removals are regressions this test pins."""
        import json

        from repro.cli import main

        blif = tmp_path / "demo.blif"
        blif.write_text(
            ".model demo\n.inputs a b\n.outputs x y\n"
            ".names a b x\n11 1\n.names a b y\n10 1\n01 1\n.end\n"
        )
        out = tmp_path / "demo.vbs"
        rc = main(["vbsgen", str(blif), "-o", str(out), "-W", "8",
                   "--codecs", "auto"])
        assert rc == 0
        capsys.readouterr()

        rc = main(["vbs", "inspect", str(out), "--json", "--per-cluster"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert set(summary) >= {
            "file", "bytes", "version", "prelude", "payload_bits",
            "prelude_bits", "dict_patterns", "dict_section_bits",
            "records", "codec_counts", "raw_equivalent_bits",
            "compression_ratio", "per_cluster",
        }
        assert set(summary["prelude"]) == {
            "cluster_size", "channel_width", "lut_size", "compact_logic",
            "width", "height",
        }
        assert summary["version"] in (2, 3)
        assert summary["records"] == sum(summary["codec_counts"].values())
        assert summary["records"] == len(summary["per_cluster"])
        for rec in summary["per_cluster"]:
            assert set(rec) == {"pos", "codec", "tag", "bits"}
        assert 0.0 < summary["compression_ratio"] < 1.0
        # Payload accounting in the JSON matches the per-record rows.
        assert summary["payload_bits"] >= sum(
            rec["bits"] for rec in summary["per_cluster"]
        )

    @pytest.mark.integration
    def test_inspect_rejects_garbage(self, tmp_path):
        from repro.cli import main
        from repro.errors import VbsError

        bad = tmp_path / "junk.vbs"
        bad.write_bytes(b"\x00" * 64)
        with pytest.raises(VbsError):
            main(["vbs", "inspect", str(bad)])

    def test_inspect_shared_dict_container_without_table(self, tmp_path,
                                                         capsys):
        """Inspecting a VERSION 4 shared-dictionary container whose task
        table is not at hand degrades to a prelude + reference summary
        instead of a traceback (the payload is unparseable by design) —
        and exits 2 with the unresolved id named on stderr, because an
        inspect that could not parse the records is a failed inspect."""
        import json

        from repro.arch import ArchParams
        from repro.cli import main
        from repro.utils.bitarray import BitArray
        from repro.vbs import VirtualBitstream
        from repro.vbs.format import ClusterRecord, VbsLayout

        layout = VbsLayout(ArchParams(channel_width=5), 1, 4, 2)
        pattern = BitArray(layout.logic_bits_per_cluster)
        pattern[3] = 1
        lay = layout.with_shared_dict(11, (pattern,))
        vbs = VirtualBitstream(lay, [
            ClusterRecord((0, 0), raw=False, logic=pattern.copy(),
                          pairs=[], codec="dict"),
        ])
        out = tmp_path / "shared.vbs"
        out.write_bytes(vbs.to_bits().to_bytes())

        rc = main(["vbs", "inspect", str(out)])
        assert rc == 2
        captured = capsys.readouterr()
        assert "shared dictionary: id 11" in captured.out
        assert "table not available" in captured.out
        assert "error: cannot resolve shared dictionary id 11" in captured.err

        rc = main(["vbs", "inspect", str(out), "--json"])
        assert rc == 2
        captured = capsys.readouterr()
        assert "cannot resolve shared dictionary id 11" in captured.err
        summary = json.loads(captured.out)
        assert summary["version"] == 4
        assert summary["shared_dict_id"] == 11
        assert summary["prelude"]["width"] == 4
        assert "shared_table_unresolved" in summary


class TestRunAllCli:
    @pytest.mark.integration
    def test_run_all_small(self, tmp_path, capsys):
        from repro.eval.run_all import main

        rc = main([
            "--names", "ex5p",
            "--scale", "0.06",
            "--channel-width", "8",
            "--clusters", "1", "2",
            "--results-dir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 5" in out
        assert (tmp_path / "fig4.csv").exists()
        assert (tmp_path / "fig5.csv").exists()
