"""Shared fixtures: small flows reused across the suite.

The expensive objects (placed-and-routed flows, expanded configurations)
are session-scoped; tests must treat them as immutable.
"""

from __future__ import annotations

import pytest

from repro.arch import ArchParams
from repro.bitstream import expand_routing
from repro.cad import run_flow
from repro.netlist import CircuitSpec, generate_circuit


@pytest.fixture(scope="session")
def params5() -> ArchParams:
    """The paper's worked-example architecture: W = 5, 6-LUT (Nraw = 284)."""
    return ArchParams(channel_width=5)


@pytest.fixture(scope="session")
def params8() -> ArchParams:
    return ArchParams(channel_width=8)


@pytest.fixture(scope="session")
def tiny_netlist():
    """A 14-LUT combinational circuit (fast unit-test workload)."""
    return generate_circuit(
        CircuitSpec("tiny", n_luts=14, n_inputs=6, n_outputs=4)
    )


@pytest.fixture(scope="session")
def tiny_flow(tiny_netlist, params8):
    return run_flow(tiny_netlist, params8, seed=11)


@pytest.fixture(scope="session")
def tiny_config(tiny_flow):
    return expand_routing(
        tiny_flow.design, tiny_flow.placement, tiny_flow.routing, tiny_flow.rrg
    )


@pytest.fixture(scope="session")
def small_netlist():
    """A 60-LUT sequential circuit (integration-test workload)."""
    return generate_circuit(
        CircuitSpec("small", n_luts=60, n_inputs=10, n_outputs=8, n_latches=12)
    )


@pytest.fixture(scope="session")
def small_flow(small_netlist, params8):
    return run_flow(small_netlist, params8, seed=3)


@pytest.fixture(scope="session")
def small_config(small_flow):
    return expand_routing(
        small_flow.design,
        small_flow.placement,
        small_flow.routing,
        small_flow.rrg,
    )
