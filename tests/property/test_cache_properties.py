"""Property tests for the byte-budgeted, persistable decode cache.

Invariants pinned over randomized operation sequences:

* the byte budget is a hard bound — after *any* op sequence
  ``total_bytes <= capacity_bytes`` (an entry larger than the whole
  budget is never resident);
* the entry-count bound holds the same way;
* LRU order is preserved under get/put refreshes (checked against a
  reference ``OrderedDict`` model);
* stats counters stay consistent (``hits + misses == lookups``; the
  byte ledger equals the sum of resident entry weights);
* persistence round-trips losslessly, and corrupt/truncated/foreign
  files in the cache directory are skipped, never fatal.
"""

import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import ArchParams
from repro.bitstream.config import FabricConfig
from repro.runtime import CachedDecode, DecodeCache
from repro.runtime.costmodel import CACHE_FILE_FORMAT
from repro.utils.bitarray import BitArray
from repro.utils.geometry import Rect
from repro.vbs.decode import DecodeStats

COMMON = settings(
    deadline=None, max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)

PARAMS = ArchParams(channel_width=5)


def make_entry(w: int, h: int, fill: int = 0) -> CachedDecode:
    """A CachedDecode whose expansion covers a w x h task rectangle."""
    config = FabricConfig(PARAMS, Rect(0, 0, w, h))
    logic = BitArray(PARAMS.nlb)
    logic[fill % PARAMS.nlb] = 1
    config.set_logic(0, 0, logic)
    config.close_switch(0, 0, fill % PARAMS.routing_bits)
    stats = DecodeStats(clusters_decoded=w * h, router_work=fill)
    return CachedDecode(
        config=config,
        stats=stats,
        codec_tags=("list",),
        layout=(w, h, 1, False),
    )


def key_of(i: int):
    return (f"digest{i}", "vbs", 1 + i % 3, 1 + i % 2)


#: One op: ("put", key index, width, height) or ("get", key index).
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 9),
                  st.integers(1, 6), st.integers(1, 6)),
        st.tuples(st.just("get"), st.integers(0, 9)),
    ),
    max_size=60,
)


def apply_ops(cache: DecodeCache, ops) -> "OrderedDict":
    """Replay ops against the cache and an LRU reference model."""
    model: "OrderedDict" = OrderedDict()
    for op in ops:
        if op[0] == "put":
            _op, i, w, h = op
            entry = make_entry(w, h, fill=i)
            cache.put(key_of(i), entry)
            model.pop(key_of(i), None)
            # An entry that can never fit the byte budget is rejected
            # outright (it must not flush the resident working set).
            if (cache.capacity_bytes is None
                    or entry.expanded_bytes <= cache.capacity_bytes):
                model[key_of(i)] = entry
        else:
            _op, i = op
            hit = cache.get(key_of(i))
            if key_of(i) in model:
                assert hit is model[key_of(i)]
                model.move_to_end(key_of(i))
            else:
                assert hit is None
        # Shrink the model by the same eviction rule (LRU-first) until
        # it satisfies both bounds, mirroring _evict_over_budget.
        def total(m):
            return sum(e.expanded_bytes for e in m.values())
        while model and (
            (cache.capacity is not None and len(model) > cache.capacity)
            or (cache.capacity_bytes is not None
                and total(model) > cache.capacity_bytes)
        ):
            model.popitem(last=False)
    return model


class TestCacheInvariants:
    @COMMON
    @given(OPS, st.integers(1, 6))
    def test_count_bound_and_lru_order(self, ops, capacity):
        cache = DecodeCache(capacity=capacity)
        model = apply_ops(cache, ops)
        assert len(cache) <= capacity
        assert cache.keys() == list(model)
        assert cache.stats.hits + cache.stats.misses == cache.stats.lookups

    @COMMON
    @given(OPS, st.integers(200, 20000))
    def test_byte_budget_never_exceeded(self, ops, budget):
        cache = DecodeCache(capacity=None, capacity_bytes=budget)
        model = apply_ops(cache, ops)
        assert cache.total_bytes <= budget
        assert cache.keys() == list(model)
        assert cache.total_bytes == sum(
            e.expanded_bytes for e in model.values()
        )

    @COMMON
    @given(OPS, st.integers(1, 5), st.integers(200, 20000))
    def test_both_bounds_together(self, ops, capacity, budget):
        cache = DecodeCache(capacity=capacity, capacity_bytes=budget)
        model = apply_ops(cache, ops)
        assert len(cache) <= capacity
        assert cache.total_bytes <= budget
        assert cache.keys() == list(model)

    def test_oversized_entry_never_resident(self):
        cache = DecodeCache(capacity=None, capacity_bytes=100)
        big = make_entry(6, 6)
        assert big.expanded_bytes > 100
        cache.put(key_of(0), big)
        assert len(cache) == 0
        assert cache.total_bytes == 0
        assert cache.stats.evictions == 1

    def test_oversized_entry_does_not_flush_residents(self):
        one = make_entry(2, 2).expanded_bytes
        cache = DecodeCache(capacity=None, capacity_bytes=3 * one)
        cache.put(key_of(0), make_entry(2, 2))
        cache.put(key_of(1), make_entry(2, 2))
        big = make_entry(6, 6)
        assert big.expanded_bytes > 3 * one
        cache.put(key_of(2), big)  # rejected, residents untouched
        assert cache.keys() == [key_of(0), key_of(1)]
        assert cache.total_bytes == 2 * one
        assert cache.stats.evictions == 1


def entries_equal(a: CachedDecode, b: CachedDecode) -> bool:
    return (
        a.config.content_equal(b.config)
        and a.stats == b.stats
        and a.codec_tags == b.codec_tags
        and a.layout == b.layout
        and a.expanded_bytes == b.expanded_bytes
    )


class TestCachePersistence:
    @COMMON
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(1, 5),
                              st.integers(1, 5)),
                    min_size=1, max_size=8))
    def test_roundtrip_is_lossless(self, puts):
        cache = DecodeCache(capacity=32)
        for i, w, h in puts:
            cache.put(key_of(i), make_entry(w, h, fill=i))
        with tempfile.TemporaryDirectory() as tmp:
            written = cache.save(tmp)
            assert written == len(cache)
            fresh = DecodeCache(capacity=32)
            loaded = fresh.load(tmp)
            assert loaded == len(cache)
            assert set(fresh.keys()) == set(cache.keys())
            assert fresh.total_bytes == cache.total_bytes
            assert fresh.stats.restored == loaded
            assert fresh.stats.lookups == 0  # restores are not lookups
            for key in cache.keys():
                assert entries_equal(
                    fresh._entries[key], cache._entries[key]
                )

    def test_load_respects_byte_budget(self, tmp_path):
        cache = DecodeCache(capacity=8)
        for i in range(4):
            cache.put(key_of(i), make_entry(3, 3, fill=i))
        cache.save(tmp_path)
        one = make_entry(3, 3).expanded_bytes
        small = DecodeCache(capacity=None, capacity_bytes=2 * one)
        small.load(tmp_path)
        assert small.total_bytes <= 2 * one
        assert len(small) == 2

    def test_corrupt_and_foreign_files_skipped(self, tmp_path):
        cache = DecodeCache(capacity=8)
        cache.put(key_of(1), make_entry(2, 2))
        cache.save(tmp_path)
        (tmp_path / "decode_deadbeef.pkl").write_bytes(b"\x80garbage")
        (tmp_path / "decode_short.pkl").write_bytes(b"")
        (tmp_path / "decode_dict.pkl").write_bytes(
            pickle.dumps({"format": CACHE_FILE_FORMAT + 1, "key": key_of(2),
                          "entry": make_entry(1, 1)})
        )
        (tmp_path / "decode_wrongtype.pkl").write_bytes(
            pickle.dumps({"format": CACHE_FILE_FORMAT, "key": key_of(3),
                          "entry": "not an entry"})
        )
        fresh = DecodeCache(capacity=8)
        assert fresh.load(tmp_path) == 1
        assert fresh.keys() == [key_of(1)]

    def test_resident_key_wins_over_persisted(self, tmp_path):
        stale = DecodeCache(capacity=8)
        stale.put(key_of(5), make_entry(2, 2, fill=1))
        stale.save(tmp_path)
        live = DecodeCache(capacity=8)
        fresh_entry = make_entry(2, 2, fill=2)
        live.put(key_of(5), fresh_entry)
        assert live.load(tmp_path) == 0
        assert live._entries[key_of(5)] is fresh_entry

    def test_load_missing_dir_is_noop(self, tmp_path):
        cache = DecodeCache(capacity=4)
        assert cache.load(tmp_path / "nope") == 0
