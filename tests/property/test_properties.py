"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import ArchParams, get_cluster_model
from repro.utils.bitarray import BitArray, BitReader, BitWriter, bits_for
from repro.utils.geometry import Rect
from repro.utils.unionfind import UnionFind

COMMON = settings(
    deadline=None, max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestBitArrayProperties:
    @COMMON
    @given(st.lists(st.integers(0, 1), max_size=200))
    def test_bits_roundtrip_through_bytes(self, bits):
        arr = BitArray.from_bits(bits)
        back = BitArray.from_bytes(arr.to_bytes(), nbits=len(bits))
        assert list(back) == bits

    @COMMON
    @given(st.lists(st.tuples(st.integers(1, 24), st.integers(0, 2 ** 24 - 1)),
                    min_size=1, max_size=30))
    def test_writer_reader_inverse(self, fields):
        w = BitWriter()
        for width, value in fields:
            w.write(value & ((1 << width) - 1), width)
        r = BitReader(w.finish())
        for width, value in fields:
            assert r.read(width) == value & ((1 << width) - 1)

    @COMMON
    @given(st.integers(1, 10 ** 9))
    def test_bits_for_is_tight(self, n):
        width = bits_for(n)
        assert (1 << width) >= n
        if width > 1:
            assert (1 << (width - 1)) < n

    @COMMON
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=120),
           st.data())
    def test_slice_overwrite_identity(self, bits, data):
        arr = BitArray.from_bits(bits)
        start = data.draw(st.integers(0, len(bits) - 1))
        width = data.draw(st.integers(0, len(bits) - start))
        piece = arr.slice(start, width)
        copy = arr.copy()
        copy.overwrite(start, piece)
        assert copy == arr


class TestGeometryProperties:
    rects = st.builds(
        Rect,
        st.integers(-20, 20), st.integers(-20, 20),
        st.integers(0, 20), st.integers(0, 20),
    )

    @COMMON
    @given(rects, rects)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @COMMON
    @given(rects, st.integers(-10, 10), st.integers(-10, 10))
    def test_translation_preserves_area_and_overlap(self, r, dx, dy):
        t = r.translated(dx, dy)
        assert t.area == r.area
        assert t.translated(-dx, -dy) == r

    @COMMON
    @given(rects, rects)
    def test_clip_subset(self, a, b):
        c = a.clipped(b)
        assert c.area <= a.area
        if c.area:
            assert b.contains_rect(c) and a.contains_rect(c)


class TestUnionFindProperties:
    @COMMON
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                    max_size=60))
    def test_connectivity_is_equivalence(self, unions):
        uf = UnionFind(range(31))
        for a, b in unions:
            uf.union(a, b)
        # Reflexive, symmetric (trivially), transitive via a brute graph.
        import itertools

        adj = {i: set() for i in range(31)}
        for a, b in unions:
            adj[a].add(b)
            adj[b].add(a)

        def reachable(src):
            seen = {src}
            stack = [src]
            while stack:
                n = stack.pop()
                for m in adj[n]:
                    if m not in seen:
                        seen.add(m)
                        stack.append(m)
            return seen

        for a in range(0, 31, 7):
            reach = reachable(a)
            for b in range(31):
                assert uf.connected(a, b) == (b in reach)


class TestFormatProperties:
    @COMMON
    @given(st.integers(2, 24), st.integers(1, 6))
    def test_eq1_and_io_space_consistent(self, w, c):
        p = ArchParams(channel_width=w)
        assert p.nraw == p.nlb + 6 * (p.ns + p.nc_plus) + 3 * p.nct
        io = p.cluster_io_count(c)
        assert io == 4 * c * w + c * c * p.num_lb_pins
        assert (1 << p.io_code_bits(c)) >= io + 1

    @COMMON
    @given(st.integers(2, 8))
    def test_macro_model_switch_bits_match(self, w):
        p = ArchParams(channel_width=w)
        model = get_cluster_model(p, 1)
        assert model.num_switches == p.routing_bits
        offsets = {(s.macro_i, s.macro_j, s.offset) for s in model.switches}
        assert len(offsets) == model.num_switches  # offsets are unique


class TestDecoderProperties:
    @COMMON
    @given(st.data())
    def test_disjoint_straight_routes_always_decode(self, data):
        """Any set of distinct straight through-routes is decodable, and
        decoding is order-insensitive for this family."""
        p = ArchParams(channel_width=6)
        model = get_cluster_model(p, 1)
        W = 6
        tracks = data.draw(
            st.lists(st.integers(0, W - 1), unique=True, max_size=W)
        )
        horizontal = data.draw(st.lists(st.booleans(),
                                        min_size=len(tracks),
                                        max_size=len(tracks)))
        pairs = []
        for t, horiz in zip(tracks, horizontal):
            if horiz:
                pairs.append((t, W + t))          # WEST -> EAST
            else:
                pairs.append((2 * W + t, 3 * W + t))  # SOUTH -> NORTH
        from repro.vbs.devirt import ClusterDecoder

        result = ClusterDecoder(model).decode(pairs)
        assert result.connections_routed == len(pairs)
        # Permutation invariance of success.
        perm = data.draw(st.permutations(pairs))
        again = ClusterDecoder(model).decode(list(perm))
        assert again.connections_routed == len(pairs)


class TestVbsSizeProperties:
    @COMMON
    @given(st.integers(2, 16), st.integers(1, 4),
           st.integers(2, 64), st.integers(2, 64))
    def test_raw_record_never_smaller_than_logic(self, w, c, tw, th):
        from repro.vbs.format import VbsLayout

        p = ArchParams(channel_width=w)
        layout = VbsLayout(p, c, tw, th)
        assert layout.raw_record_bits > layout.smart_record_bits(0)
        # Break-even consistency: below break-even, smart coding wins.
        k = layout.record_break_even_pairs()
        if k > 0:
            assert layout.smart_record_bits(k) <= layout.raw_record_bits
