"""Seeded-random property tests over the full codec family.

Sweeps every registered codec against layout corner cases — minimum
(1-input) and paper (6-input) LUTs, minimum and maximum channel width,
single-macro tasks, partial edge clusters — and logic-field corner
cases — all-zero, all-ones, and random sparse fields — asserting the
codec contract each time: encode/decode are exact inverses under the
same container state, and ``record_bits`` equals the emitted bits plus
framing.  ``derandomize=True`` makes the sweep reproducible (seeded by
the test name), so CI failures replay locally.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import ArchParams
from repro.utils.bitarray import BitArray, BitReader, BitWriter
from repro.vbs.codecs import registered_codecs
from repro.vbs.encode import VirtualBitstream
from repro.vbs.format import ClusterRecord, CodecState, VbsLayout

COMMON = settings(
    deadline=None, max_examples=25, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Corner architectures: minimum LUT, paper LUT; minimum and maximum
#: channel width (the prelude's 8-bit field tops out at 255 tracks).
ARCH_CORNERS = (
    ArchParams(channel_width=2, lut_size=1, chanx_pins=(0,), chany_pins=(1,)),
    ArchParams(channel_width=5),
    ArchParams(channel_width=255, lut_size=6),
)


def _layout(draw) -> VbsLayout:
    params = draw(st.sampled_from(ARCH_CORNERS))
    cluster = draw(st.integers(1, 3))
    # Include 1x1 tasks and dimensions that leave partial edge clusters.
    width = draw(st.sampled_from([1, 2, 3, 5, 7]))
    height = draw(st.sampled_from([1, 2, 3, 5, 7]))
    return VbsLayout(
        params, cluster, width, height,
        compact_logic=draw(st.booleans()),
    )


def _logic_field(draw, nbits: int) -> BitArray:
    kind = draw(st.sampled_from(["zeros", "ones", "sparse"]))
    if kind == "zeros":
        return BitArray(nbits)
    if kind == "ones":
        return BitArray(nbits, fill=1)
    arr = BitArray(nbits)
    for idx in draw(st.lists(st.integers(0, nbits - 1), max_size=24)):
        arr[idx] = 1
    return arr


def _record(draw, layout: VbsLayout, raw: bool) -> ClusterRecord:
    cgw, cgh = layout.cluster_grid
    pos = (draw(st.integers(0, cgw - 1)), draw(st.integers(0, cgh - 1)))
    if raw:
        return ClusterRecord(
            pos, raw=True,
            raw_frames=_logic_field(draw, layout.raw_bits_per_cluster),
        )
    logic = _logic_field(draw, layout.logic_bits_per_cluster)
    io_limit = layout.params.cluster_io_count(layout.cluster_size)
    n_pairs = draw(st.integers(0, min(6, layout.max_routes)))
    pairs = [
        (draw(st.integers(0, io_limit - 1)), draw(st.integers(0, io_limit - 1)))
        for _ in range(n_pairs)
    ]
    return ClusterRecord(pos, raw=False, logic=logic, pairs=pairs)


class TestFamilyRoundTrips:
    @COMMON
    @given(st.data())
    def test_every_codec_on_corner_layouts(self, data):
        layout = _layout(data.draw)
        for codec in registered_codecs():
            rec = _record(data.draw, layout, raw=codec.codes_raw)
            lay = (
                layout.with_dict_table((rec.logic,))
                if codec.needs_dict else layout
            )
            if codec.wide_tag:
                lay = lay.with_wide_tags()
            if codec.stateful and data.draw(st.booleans()):
                prev = _logic_field(data.draw, lay.logic_bits_per_cluster)
                enc_state = CodecState(prev_logic=prev)
                dec_state = CodecState(prev_logic=prev.copy())
            else:
                enc_state, dec_state = None, None
            assert codec.encodable(rec, lay)
            w = BitWriter()
            codec.encode_record(w, rec, lay, state=enc_state)
            bits = w.finish()
            assert codec.record_bits(rec, lay, state=enc_state) == (
                lay.record_overhead_bits + len(bits)
            ), codec.name
            back = codec.decode_record(
                BitReader(bits), rec.pos, lay, state=dec_state
            )
            assert back.codec == codec.name
            if codec.codes_raw:
                assert back.raw_frames == rec.raw_frames, codec.name
            else:
                assert back.logic == rec.logic, codec.name
                assert back.pairs == rec.pairs, codec.name

    @COMMON
    @given(st.data())
    def test_delta_state_mismatch_is_detected_by_contract(self, data):
        """Delta decoded under the *wrong* state yields the wrong field —
        the codec genuinely depends on the threaded state (guards against
        a regression that silently ignores it)."""
        layout = _layout(data.draw)
        from repro.vbs.codecs import codec_by_name

        delta = codec_by_name("delta")
        nbits = layout.logic_bits_per_cluster
        rec = _record(data.draw, layout, raw=False)
        prev = _logic_field(data.draw, nbits)
        other = prev.copy()
        flip = data.draw(st.integers(0, nbits - 1))
        other[flip] ^= 1
        w = BitWriter()
        delta.encode_record(w, rec, layout, state=CodecState(prev_logic=prev))
        back = delta.decode_record(
            BitReader(w.finish()), rec.pos, layout,
            state=CodecState(prev_logic=other),
        )
        assert back.logic != rec.logic


class TestVersion4Family:
    """The wide-tag codecs: adaptive Rice and best-of-k delta."""

    def _regime_switch_field(self, rng, nbits: int) -> BitArray:
        """A mixed-regime logic field — dense runs, periodic strides and
        empty stretches, the shape of partially-used LUT truth tables
        (the regime the adaptive parameter walk exists for)."""
        arr = BitArray(nbits)
        pos = 0
        while pos < nbits:
            seg = rng.randint(8, 40)
            mode = rng.choice(["run", "stride", "empty"])
            if mode == "run":
                for i in range(pos, min(nbits, pos + seg)):
                    arr[i] = 1
            elif mode == "stride":
                stride = rng.choice([4, 8, 16])
                for i in range(pos, min(nbits, pos + seg), stride):
                    arr[i] = 1
            pos += seg
        return arr

    def test_adaptive_k_never_worse_than_fixed_on_sweep_corpus(self):
        """Summed over the derandomized sweep corpus, the context-modeled
        parameter walk beats the per-record fixed ``k`` — same record
        framing, same count field, so the comparison isolates the
        adaptation."""
        import random

        from repro.vbs.codecs import codec_by_name

        rng = random.Random(20260730)
        layout = VbsLayout(
            ArchParams(channel_width=8), 2, 8, 8
        ).with_wide_tags()
        nbits = layout.logic_bits_per_cluster
        adaptive = codec_by_name("rice-a")
        fixed = codec_by_name("golomb")
        total_adaptive = total_fixed = wins = 0
        for _ in range(120):
            field = self._regime_switch_field(rng, nbits)
            if not field.count():
                continue
            rec = ClusterRecord((0, 0), raw=False, logic=field, pairs=[])
            a = adaptive.record_bits(rec, layout)
            f = fixed.record_bits(rec, layout)
            total_adaptive += a
            total_fixed += f
            wins += a < f
        assert total_adaptive < total_fixed
        assert wins > 60  # the walk wins most records, not a lucky few

    @COMMON
    @given(st.data())
    def test_delta_k_never_worse_than_delta_plus_ref_field(self, data):
        """delta-k's reference 0 *is* delta's reference, so best-of-k
        costs at most the plain delta body plus the 2-bit index."""
        from repro.vbs.codecs import codec_by_name
        from repro.vbs.format import DELTA_REF_BITS

        layout = _layout(data.draw).with_wide_tags()
        rec = _record(data.draw, layout, raw=False)
        if data.draw(st.booleans()):
            prev = _logic_field(data.draw, layout.logic_bits_per_cluster)
            s1 = CodecState(prev_logic=prev)
            s2 = CodecState(prev_logic=prev.copy())
        else:
            s1 = s2 = None
        delta_bits = codec_by_name("delta").record_bits(
            rec, layout, state=s1
        )
        dk_bits = codec_by_name("delta-k").record_bits(
            rec, layout, state=s2
        )
        assert dk_bits <= delta_bits + DELTA_REF_BITS

    @COMMON
    @given(st.data())
    def test_delta_k_exploits_any_history_slot(self, data):
        """A record repeating *any* of the last four smart logic fields
        codes its residue for free (zero set bits), wherever in the
        history the match sits — and round-trips under the same state."""
        from repro.utils.bitarray import bits_for
        from repro.vbs.codecs import codec_by_name
        from repro.vbs.format import DELTA_REF_BITS, DELTA_REFS

        layout = _layout(data.draw).with_wide_tags()
        nbits = layout.logic_bits_per_cluster
        history = []
        for _ in range(DELTA_REFS):
            field = _logic_field(data.draw, nbits)
            if field not in history:
                history.append(field)
        match = data.draw(st.integers(0, len(history) - 1))
        rec = ClusterRecord(
            (0, 0), raw=False, logic=history[match].copy(), pairs=[]
        )
        delta_k = codec_by_name("delta-k")
        state = CodecState(prev_logic=history[0])
        state.history = tuple(history)
        empty_residue = bits_for(nbits + 1)
        assert delta_k.record_bits(rec, layout, state=state) == (
            layout.record_overhead_bits
            + layout.route_count_bits
            + DELTA_REF_BITS
            + empty_residue
        )
        w = BitWriter()
        delta_k.encode_record(w, rec, layout, state=state)
        dec_state = CodecState(prev_logic=history[0])
        dec_state.history = tuple(history)
        back = delta_k.decode_record(
            BitReader(w.finish()), rec.pos, layout, state=dec_state
        )
        assert back.logic == rec.logic


class TestFamilyContainers:
    @COMMON
    @given(st.data())
    def test_container_walk_reencodes_byte_identically(self, data):
        """Random mixed-family containers: parse -> re-encode is the
        identity on bytes, and size accounting matches serialization."""
        layout = _layout(data.draw)
        cgw, cgh = layout.cluster_grid
        count = data.draw(st.integers(0, min(5, cgw * cgh)))
        positions = data.draw(st.lists(
            st.tuples(st.integers(0, cgw - 1), st.integers(0, cgh - 1)),
            min_size=count, max_size=count, unique=True,
        ))
        records, patterns = [], []
        for pos in sorted(positions, key=lambda p: (p[1], p[0])):
            codec = data.draw(st.sampled_from(registered_codecs()))
            rec = _record(data.draw, layout, raw=codec.codes_raw)
            rec.pos = pos
            rec.codec = codec.name
            if codec.needs_dict and rec.logic not in patterns:
                patterns.append(rec.logic)
            records.append(rec)
        lay = layout.with_dict_table(tuple(patterns)) if patterns else layout
        from repro.vbs.codecs import codec_by_name

        if any(codec_by_name(r.codec).wide_tag for r in records):
            lay = lay.with_wide_tags()
        vbs = VirtualBitstream(lay, records)
        bits = vbs.to_bits()
        assert len(bits) == vbs.container_bits
        # The prelude cannot reconstruct a non-default pin partition, so
        # corner architectures pass their params explicitly (the
        # documented usage for K != 6 fabrics).
        parsed = VirtualBitstream.from_bits(bits, params=layout.params)
        assert parsed.size_bits == vbs.size_bits
        assert parsed.to_bits() == bits

    @COMMON
    @given(st.data())
    def test_v1_archival_roundtrip(self, data):
        """Legacy-codec containers round-trip through the VERSION 1
        tag-less layout too."""
        layout = _layout(data.draw)
        cgw, cgh = layout.cluster_grid
        count = data.draw(st.integers(0, min(4, cgw * cgh)))
        positions = data.draw(st.lists(
            st.tuples(st.integers(0, cgw - 1), st.integers(0, cgh - 1)),
            min_size=count, max_size=count, unique=True,
        ))
        records = []
        for pos in sorted(positions, key=lambda p: (p[1], p[0])):
            raw = data.draw(st.booleans())
            rec = _record(data.draw, layout, raw=raw)
            rec.pos = pos
            records.append(rec)
        vbs = VirtualBitstream(layout, records)
        b1 = vbs.to_bits(version=1)
        parsed = VirtualBitstream.from_bits(b1, params=layout.params)
        assert parsed.source_version == 1
        for a, b in zip(parsed.records, records):
            assert a.pos == b.pos and a.raw == b.raw
            if b.raw:
                assert a.raw_frames == b.raw_frames
            else:
                assert a.logic == b.logic and a.pairs == b.pairs
        assert parsed.to_bits(version=1) == b1


class TestPredictorFeatures:
    """Feature extraction behind the codec predictor: a deterministic
    pure function of (record, layout, pool bucket), independently
    re-derived here from a naive reference.  The whole property suite
    also runs under ``REPRO_NO_NUMPY=1`` in CI, so this sweep doubles as
    the cross-backend determinism check."""

    @COMMON
    @given(st.data())
    def test_key_matches_naive_reference(self, data):
        from repro.vbs.predictor import cluster_key

        layout = _layout(data.draw)
        raw = data.draw(st.booleans())
        rec = _record(data.draw, layout, raw=raw)
        pool = data.draw(st.integers(0, 8))
        has_frames = data.draw(st.booleans())
        key = cluster_key(rec, layout, pool, has_frames=has_frames)
        # Pure and deterministic: recomputing (and recomputing on a
        # field-level copy) yields the same string.
        assert cluster_key(rec, layout, pool, has_frames=has_frames) == key

        field = rec.raw_frames if raw else rec.logic
        as_bits = [1 if field[i] else 0 for i in range(len(field))]
        density = (sum(as_bits) * 16) // len(as_bits)
        blocks = sum(
            1 for run in "".join(map(str, as_bits)).split("0") if run
        )
        pairs = len(rec.pairs or [])
        parts = key[1:].split(".")
        assert key[0] == ("r" if raw else "s")
        assert parts[0] == str(density)
        assert parts[1] == str(blocks.bit_length())
        assert parts[2] == str(pairs.bit_length())
        assert parts[3] == "15"  # no dictionary table on these layouts
        assert parts[4] == str(pool)
        assert parts[5] == f"0{1 if (raw or has_frames) else 0}"

    @COMMON
    @given(st.data())
    def test_dict_distance_feature(self, data):
        """With a table present, the distance field is the bucketed
        minimum popcount distance over the table — and an exact hit is
        bucket 0."""
        from repro.vbs.predictor import cluster_key

        layout = _layout(data.draw)
        rec = _record(data.draw, layout, raw=False)
        other = _logic_field(data.draw, layout.logic_bits_per_cluster)
        lay = layout.with_dict_table((rec.logic.copy(), other))
        key = cluster_key(rec, lay, 0)
        assert key.split(".")[3] == "0"
        far = layout.with_dict_table((other,))
        dist = (rec.logic ^ other).count()
        expected = min(15, dist.bit_length())
        assert cluster_key(rec, far, 0).split(".")[3] == str(expected)

    @COMMON
    @given(st.data())
    def test_pool_bucket_range_and_determinism(self, data):
        from repro.vbs.predictor import pool_entropy_bucket

        layout = _layout(data.draw)
        n = data.draw(st.integers(1, 6))
        records = [_record(data.draw, layout, raw=data.draw(st.booleans()))
                   for _ in range(n)]
        bucket = pool_entropy_bucket(records)
        assert 0 <= bucket <= 8
        assert pool_entropy_bucket(records) == bucket
        assert pool_entropy_bucket(list(reversed(records))) == bucket
