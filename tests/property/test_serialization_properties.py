"""Property tests on Virtual Bit-Stream container serialization.

Synthetic record sets (random positions, logic patterns, connection lists,
raw-fallback mix) must round-trip bit-exactly through the container codec
in both Table I and compact-logic modes, and the declared size accounting
must match the serialized payload exactly.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import ArchParams
from repro.utils.bitarray import BitArray
from repro.vbs.encode import VirtualBitstream
from repro.vbs.format import PRELUDE_BITS, ClusterRecord, VbsLayout

COMMON = settings(
    deadline=None, max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_records(draw, layout: VbsLayout) -> list:
    cgw, cgh = layout.cluster_grid
    n_cells = layout.cluster_size * layout.cluster_size
    io_limit = layout.params.cluster_io_count(layout.cluster_size)
    count = draw(st.integers(0, min(6, cgw * cgh)))
    positions = draw(
        st.lists(
            st.tuples(st.integers(0, cgw - 1), st.integers(0, cgh - 1)),
            min_size=count, max_size=count, unique=True,
        )
    )
    records = []
    for pos in sorted(positions, key=lambda p: (p[1], p[0])):
        if draw(st.booleans()):
            frames = BitArray(layout.raw_bits_per_cluster)
            for idx in draw(st.lists(
                st.integers(0, layout.raw_bits_per_cluster - 1), max_size=20
            )):
                frames[idx] = 1
            records.append(ClusterRecord(pos, raw=True, raw_frames=frames))
        else:
            logic = BitArray(layout.logic_bits_per_cluster)
            for cell in draw(st.lists(
                st.integers(0, n_cells - 1), max_size=n_cells, unique=True
            )):
                logic[cell * layout.params.nlb] = 1
            n_pairs = draw(st.integers(0, min(10, layout.max_routes)))
            pairs = [
                (draw(st.integers(0, io_limit - 1)),
                 draw(st.integers(0, io_limit - 1)))
                for _ in range(n_pairs)
            ]
            records.append(
                ClusterRecord(pos, raw=False, logic=logic, pairs=pairs)
            )
    return records


@COMMON
@given(st.data())
def test_container_roundtrip_table1(data):
    params = ArchParams(channel_width=data.draw(st.integers(2, 10)))
    layout = VbsLayout(
        params,
        data.draw(st.integers(1, 3)),
        data.draw(st.integers(2, 12)),
        data.draw(st.integers(2, 12)),
        compact_logic=False,
    )
    records = _random_records(data.draw, layout)
    vbs = VirtualBitstream(layout, records)
    bits = vbs.to_bits()
    assert len(bits) == PRELUDE_BITS + vbs.size_bits
    parsed = VirtualBitstream.from_bits(bits)
    assert parsed.size_bits == vbs.size_bits
    assert [r.pos for r in parsed.records] == [r.pos for r in records]
    for a, b in zip(parsed.records, records):
        assert a.raw == b.raw
        if a.raw:
            assert a.raw_frames == b.raw_frames
        else:
            assert a.logic == b.logic and a.pairs == b.pairs


@COMMON
@given(st.data())
def test_container_roundtrip_compact(data):
    params = ArchParams(channel_width=data.draw(st.integers(2, 8)))
    layout = VbsLayout(
        params,
        data.draw(st.integers(1, 3)),
        data.draw(st.integers(2, 10)),
        data.draw(st.integers(2, 10)),
        compact_logic=True,
    )
    records = _random_records(data.draw, layout)
    vbs = VirtualBitstream(layout, records)
    bits = vbs.to_bits()
    assert len(bits) == PRELUDE_BITS + vbs.size_bits
    parsed = VirtualBitstream.from_bits(bits)
    assert parsed.layout.compact_logic
    for a, b in zip(parsed.records, records):
        assert a.raw == b.raw
        if not a.raw:
            assert a.logic == b.logic and a.pairs == b.pairs


@COMMON
@given(st.integers(2, 12), st.integers(1, 4), st.integers(0, 40))
def test_compact_never_larger(w, c, n_pairs):
    params = ArchParams(channel_width=w)
    plain = VbsLayout(params, c, 16, 16, compact_logic=False)
    compact = VbsLayout(params, c, 16, 16, compact_logic=True)
    pairs = min(n_pairs, plain.max_routes)
    for present in range(0, c * c + 1):
        assert compact.smart_record_bits(pairs, present) <= (
            plain.smart_record_bits(pairs) + c * c
        )
        if present < c * c:
            # With at least one absent macro the compact field is smaller
            # whenever NLB exceeds the flag overhead.
            if (c * c - present) * params.nlb > c * c:
                assert compact.smart_record_bits(pairs, present) < (
                    plain.smart_record_bits(pairs)
                )
