"""Fleet-scope shared-dictionary lifecycle under cross-shard churn.

The single-controller invariant (tables resident iff referenced by a
resident task) rolls up one level: at *every* intermediate fleet state —
asserted through the simulator's ``observer`` hook across a shard-count
x eviction-churn x seed grid — each shard's resident tables equal the
tables its own residents reference, the fleet-level union equals the
tables referenced by at least one shard, and the per-table
referencing-shard counts agree with a from-scratch recount.  A table
referenced by two shards must survive either shard dropping its copy;
it leaves the fleet exactly when the *last* referencing shard does.
"""

import json

import pytest

from repro.arch import ArchParams, FabricArch
from repro.runtime import (
    ExternalMemory,
    FabricManager,
    FleetManager,
    ReconfigurationController,
    WorkloadSimulator,
    generate_trace,
    synthesize_task_scope_images,
)


@pytest.fixture(scope="module")
def task_groups():
    """Two 2-container task groups, each sharing one external table."""
    groups = synthesize_task_scope_images(
        n_tasks=2, containers_per_task=2, seed=1
    )
    for _names, result in groups:
        assert result.shared  # the sweep is vacuous without kept tables
    return groups


def _fleet(task_groups, n_shards, fabric_w, fabric_h, capacity, router):
    params = ArchParams(channel_width=8)
    memory = ExternalMemory()
    managers = []
    for _ in range(n_shards):
        fabric = FabricArch(
            params, fabric_w, fabric_h,
            {(x, y): "clb"
             for x in range(fabric_w) for y in range(fabric_h)},
        )
        managers.append(FabricManager(ReconfigurationController(
            fabric, memory, cache_capacity=capacity
        )))
    fleet = FleetManager(managers, router=router)
    for names, result in task_groups:
        fleet.store_task(names, result)
    return fleet


class TestFleetDictLifecycleUnderChurn:
    """Seeded trace x shard-count x capacity grid over real tasks."""

    #: (shard count, fabric head-room factor in halves, decode-cache
    #: capacity): tight fabrics churn tables on every switch, roomy
    #: ones keep sibling containers co-resident — across one, two and
    #: three shards so tables get referenced from several shards at
    #: once (the roll-up's interesting regime).
    GRID = [(1, 2, 1), (2, 2, 1), (2, 3, 16), (3, 2, 16), (3, 4, 16)]

    @pytest.mark.parametrize("kind", ["hot-set", "round-robin", "zipf",
                                      "adversarial"])
    @pytest.mark.parametrize("n_shards,headroom,capacity", GRID)
    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("router", ["hash", "load"])
    def test_fleet_refcount_invariant_at_every_event(
        self, task_groups, kind, n_shards, headroom, capacity, seed,
        router
    ):
        images = [
            (name, vbs)
            for names, result in task_groups
            for name, vbs in zip(names, result.containers)
        ]
        max_w = max(vbs.layout.width for _n, vbs in images)
        max_h = max(vbs.layout.height for _n, vbs in images)
        fleet = _fleet(
            task_groups, n_shards,
            max_w * headroom // 2 + 1, max_h + 1, capacity, router,
        )

        def check_invariant(_event):
            union = set()
            recount = {}
            for mgr in fleet.shards:
                ctrl = mgr.controller
                referenced = {
                    task.shared_dict_id
                    for task in ctrl.resident.values()
                    if task.shared_dict_id is not None
                }
                # Shard-local invariant survives the fleet tier: each
                # controller still holds exactly what its residents use.
                assert set(ctrl.shared_dicts) == referenced
                union |= referenced
                for dict_id in referenced:
                    recount[dict_id] = recount.get(dict_id, 0) + 1
            # Fleet roll-up: resident tables == tables referenced by at
            # least one shard, refcounts == referencing-shard recount.
            assert fleet.resident_shared_dicts() == union
            assert fleet.shared_dict_refcounts() == recount

        trace = generate_trace(
            kind, [n for n, _v in images], 40, seed=seed
        )
        report = WorkloadSimulator(
            fleet=fleet, observer=check_invariant
        ).run(trace)
        sd = report["fleet"]["shared_dicts"]
        assert sd["drops"] <= sd["faults"]
        assert set(sd["resident_at_end"]) == fleet.resident_shared_dicts()
        assert sd["referencing_shards"] == {
            str(k): v for k, v in fleet.shared_dict_refcounts().items()
        }

    def test_multi_shard_reference_survives_single_shard_drop(
        self, task_groups
    ):
        """A table referenced from two shards outlives either copy: the
        fleet drop ticks only at the last releasing shard."""
        images = [
            (name, vbs)
            for names, result in task_groups
            for name, vbs in zip(names, result.containers)
        ]
        max_w = max(vbs.layout.width for _n, vbs in images)
        max_h = max(vbs.layout.height for _n, vbs in images)
        fleet = _fleet(task_groups, 2, max_w + 1, max_h + 1, 16, "hash")
        names, _result = task_groups[0]
        sibling_a, sibling_b = names[0], names[1]
        # Pin the two sibling containers on *different* shards.
        fleet.shards[0].place_task(sibling_a)
        fleet.shards[1].place_task(sibling_b)
        dict_id = fleet.shards[0].controller.resident[
            sibling_a
        ].shared_dict_id
        assert dict_id is not None
        fleet.sync_shared_dicts()
        assert fleet.shared_dict_refcounts()[dict_id] == 2
        drops_before = fleet.fleet_dict_drops
        fleet.shards[0].controller.unload_task(sibling_a)
        fleet.sync_shared_dicts()
        # Shard 0 released its copy, but shard 1 still references it:
        # fleet-resident, zero fleet drops.
        assert dict_id in fleet.resident_shared_dicts()
        assert fleet.shared_dict_refcounts()[dict_id] == 1
        assert fleet.fleet_dict_drops == drops_before
        fleet.shards[1].controller.unload_task(sibling_b)
        fleet.sync_shared_dicts()
        assert dict_id not in fleet.resident_shared_dicts()
        assert fleet.fleet_dict_drops == drops_before + 1

    def test_sweep_exercises_cross_shard_residency(self, task_groups):
        """The grid is not vacuous: some replay really does hold one
        table on two shards at once (else the roll-up is untested)."""
        images = [
            (name, vbs)
            for names, result in task_groups
            for name, vbs in zip(names, result.containers)
        ]
        max_w = max(vbs.layout.width for _n, vbs in images)
        max_h = max(vbs.layout.height for _n, vbs in images)
        seen_multi = []

        fleet = _fleet(task_groups, 3, max_w + 1, max_h + 1, 16, "hash")

        def spot_multi(_event):
            if any(v >= 2 for v in fleet.shared_dict_refcounts().values()):
                seen_multi.append(True)

        trace = generate_trace(
            "round-robin", [n for n, _v in images], 40, seed=1
        )
        WorkloadSimulator(fleet=fleet, observer=spot_multi).run(trace)
        assert seen_multi

    def test_fleet_report_deterministic_under_churn(self, task_groups):
        images = [
            (name, vbs)
            for names, result in task_groups
            for name, vbs in zip(names, result.containers)
        ]
        max_w = max(vbs.layout.width for _n, vbs in images)
        max_h = max(vbs.layout.height for _n, vbs in images)
        trace = generate_trace(
            "zipf", [n for n, _v in images], 40, seed=7,
            arrivals="poisson", mean_interarrival=300,
        )
        reports = [
            WorkloadSimulator(fleet=_fleet(
                task_groups, 2, max_w + 1, max_h + 1, 16, "load"
            )).run(trace)
            for _ in range(2)
        ]
        assert json.dumps(reports[0], sort_keys=True) == \
               json.dumps(reports[1], sort_keys=True)
