"""Property suite: every batch bit kernel against the naive reference.

The ``ref_*`` functions in :mod:`repro.utils.bitkernels` are the retained
one-bit-at-a-time implementations — the semantics the containers had
before the kernel layer.  Each property drives a kernel and its oracle
with the same randomized buffers, widths, offsets and seam alignments
and demands bit-exact agreement, on the pure-Python backend and (when
numpy is importable) the numpy backend in the same run.  Sizes straddle
the small-input thresholds so both the fallback and the vectorized
branches of every numpy wrapper are exercised.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.utils.bitkernels as bk

COMMON = settings(
    deadline=None, max_examples=80,
    suppress_health_check=[HealthCheck.too_slow],
)

# (name, kernel) per primitive: the pure-Python kernel always, the numpy
# wrapper when that backend is importable.  Field/span/scan primitives
# without a numpy variant are shared machinery — still pinned to the
# reference on their own.
def _impls(py_name, np_name=None):
    impls = [pytest.param(getattr(bk, py_name), id=py_name)]
    if np_name is not None and bk.HAVE_NUMPY:
        impls.append(pytest.param(getattr(bk, np_name), id=np_name))
    return impls


# Buffers up to a few hundred bits: past the 64-byte / 64-field numpy
# thresholds, with plenty of unaligned-seam cases below them.
buffers = st.binary(min_size=1, max_size=96).map(bytearray)
# Field widths: 0 and 1 are the classic off-by-one traps; > 64 exercises
# the multi-word big-integer path.
widths = st.integers(0, 80)


@st.composite
def buffer_and_span(draw):
    """A buffer plus an in-range (offset, width) bit span inside it."""
    buf = draw(buffers)
    nbits = len(buf) * 8
    offset = draw(st.integers(0, nbits))
    width = draw(st.integers(0, nbits - offset))
    return buf, offset, width


class TestFieldKernels:
    @COMMON
    @given(buffer_and_span())
    def test_get_field_matches_reference(self, bos):
        buf, offset, width = bos
        assert bk.get_field(buf, offset, width) == bk.ref_get_field(
            buf, offset, width
        )

    @COMMON
    @given(buffer_and_span(), st.integers(0, (1 << 96) - 1))
    def test_set_field_matches_reference(self, bos, value):
        buf, offset, width = bos
        a, b = bytearray(buf), bytearray(buf)
        bk.set_field(a, offset, width, value & ((1 << width) - 1) if width
                     else 0)
        bk.ref_set_field(b, offset, width, value & ((1 << width) - 1) if width
                         else 0)
        assert a == b

    @COMMON
    @given(buffer_and_span())
    def test_get_after_set_roundtrips(self, bos):
        buf, offset, width = bos
        value = ((1 << width) - 1) & 0x5A5A5A5A5A5A5A5A5A5A
        bk.set_field(buf, offset, width, value)
        assert bk.get_field(buf, offset, width) == value


class TestSpanKernels:
    @COMMON
    @given(buffer_and_span())
    def test_extract_bits_matches_reference(self, bos):
        buf, offset, width = bos
        assert bk.extract_bits(buf, offset, width) == bk.ref_extract_bits(
            buf, offset, width
        )

    @COMMON
    @given(buffer_and_span(), buffers)
    def test_splice_bits_matches_reference(self, bos, src):
        dst, offset, width = bos
        width = min(width, len(src) * 8)
        a, b = bytearray(dst), bytearray(dst)
        bk.splice_bits(a, offset, src, width)
        bk.ref_splice_bits(b, offset, src, width)
        assert a == b

    @COMMON
    @given(buffer_and_span())
    def test_splice_inverts_extract(self, bos):
        buf, offset, width = bos
        span = bk.extract_bits(buf, offset, width)
        copy = bytearray(buf)
        bk.splice_bits(copy, offset, span, width)
        assert copy == buf


class TestScanKernels:
    @COMMON
    @given(buffers)
    @pytest.mark.parametrize("popcount", _impls("py_popcount", "np_popcount"))
    def test_popcount_matches_reference(self, popcount, buf):
        assert popcount(buf) == bk.ref_popcount(buf)

    @COMMON
    @given(buffers, buffers)
    @pytest.mark.parametrize("xor_bytes", _impls("py_xor_bytes", "np_xor_bytes"))
    def test_xor_matches_reference(self, xor_bytes, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert xor_bytes(a, b) == bk.ref_xor_bytes(a, b)

    @COMMON
    @given(buffers, st.integers(0, 16))
    @pytest.mark.parametrize("find_ones", _impls("py_find_ones", "np_find_ones"))
    def test_find_ones_matches_reference(self, find_ones, buf, slack):
        nbits = max(0, len(buf) * 8 - slack)
        assert find_ones(buf, nbits) == bk.ref_find_ones(buf, nbits)

    @COMMON
    @given(st.integers(1, 800).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(st.integers(0, n - 1), max_size=120),
        )
    ))
    @pytest.mark.parametrize("set_bits", _impls("py_set_bits", "np_set_bits"))
    def test_set_bits_matches_reference(self, set_bits, case):
        nbits, positions = case
        assert set_bits(nbits, positions) == bk.ref_set_bits(nbits, positions)

    @COMMON
    @given(buffer_and_span(), st.integers(0, 1))
    def test_run_of_matches_reference(self, bos, bit):
        buf, pos, width = bos
        nbits = pos + width  # any in-range logical length
        assert bk.run_of(buf, pos, nbits, bit) == bk.ref_run_of(
            buf, pos, nbits, bit
        )


class TestBatchFieldKernels:
    @COMMON
    @given(st.integers(1, 80).flatmap(
        lambda w: st.tuples(
            st.just(w),
            st.lists(st.integers(0, (1 << w) - 1), max_size=120),
        )
    ))
    @pytest.mark.parametrize(
        "pack_fields", _impls("py_pack_fields", "np_pack_fields")
    )
    def test_pack_fields_matches_reference(self, pack_fields, case):
        width, values = case
        assert pack_fields(values, width) == bk.ref_pack_fields(values, width)

    @COMMON
    @given(buffers, st.integers(1, 80), st.integers(0, 7))
    @pytest.mark.parametrize(
        "unpack_fields", _impls("py_unpack_fields", "np_unpack_fields")
    )
    def test_unpack_fields_matches_reference(
        self, unpack_fields, buf, width, offset
    ):
        nbits = len(buf) * 8
        if offset > nbits:
            offset = nbits
        count = (nbits - offset) // width
        assert unpack_fields(buf, offset, width, count) == (
            bk.ref_unpack_fields(buf, offset, width, count)
        )

    @COMMON
    @given(st.integers(1, 64).flatmap(
        lambda w: st.tuples(
            st.just(w),
            st.lists(st.integers(0, (1 << w) - 1), max_size=120),
        )
    ))
    def test_unpack_inverts_pack(self, case):
        width, values = case
        packed = bk.pack_fields(values, width)
        assert bk.unpack_fields(packed, 0, width, len(values)) == values


class TestBackendContract:
    def test_backend_name_consistent(self):
        assert bk.BACKEND == ("numpy" if bk.HAVE_NUMPY else "python")

    @pytest.mark.skipif(not bk.HAVE_NUMPY, reason="numpy backend not active")
    def test_numpy_and_python_agree_on_large_inputs(self):
        # One deterministic case comfortably past every small-input
        # threshold, so the vectorized branches themselves run.
        import random

        rng = random.Random(20150905)
        buf = bytearray(rng.randrange(256) for _ in range(512))
        nbits = len(buf) * 8
        assert bk.np_popcount(buf) == bk.py_popcount(buf)
        assert bk.np_xor_bytes(buf, buf[::-1]) == bk.py_xor_bytes(
            buf, buf[::-1]
        )
        assert bk.np_find_ones(buf, nbits - 3) == bk.py_find_ones(
            buf, nbits - 3
        )
        positions = sorted(rng.sample(range(nbits), 200))
        assert bk.np_set_bits(nbits, positions) == bk.py_set_bits(
            nbits, positions
        )
        for width in (1, 7, 13, 32, 63):
            values = [rng.randrange(1 << width) for _ in range(150)]
            assert bk.np_pack_fields(values, width) == bk.py_pack_fields(
                values, width
            )
            packed = bk.py_pack_fields(values, width)
            assert bk.np_unpack_fields(packed, 0, width, 150) == (
                bk.py_unpack_fields(packed, 0, width, 150)
            )
