"""Property tests for the open-loop trace statistics and the
shared-dictionary lifecycle under workload eviction.

Trace statistics (derandomized hypothesis sweeps):

* seeded Poisson inter-arrivals hit the configured mean within
  tolerance, and a fixed seed reproduces the timestamp stream
  byte-for-byte;
* the Zipf mix produces monotone non-increasing arrival frequencies in
  task-list rank order (the derandomized sweep pins the seeds, so the
  sampled frequencies are deterministic).

Shared-dictionary lifecycle (seeded trace x fabric-capacity grid): at
*every* intermediate simulator state — asserted through the simulator's
``observer`` hook, not just at the end — the set of resident tables
equals exactly the set of tables referenced by resident tasks: a table
is never dropped while a loaded task references it, and is dropped
exactly when the last referencing task unloads.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import ArchParams, FabricArch
from repro.runtime import (
    ExternalMemory,
    FabricManager,
    ReconfigurationController,
    WorkloadSimulator,
    generate_trace,
    synthesize_task_scope_images,
)

COMMON = settings(
    deadline=None, max_examples=25, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

NAMES = ["t0", "t1", "t2", "t3"]


class TestPoissonArrivals:
    @COMMON
    @given(
        seed=st.integers(0, 10**6),
        mean=st.sampled_from([50, 500, 2000, 20000]),
        kind=st.sampled_from(["hot-set", "round-robin", "zipf"]),
    )
    def test_mean_interarrival_within_tolerance(self, seed, mean, kind):
        trace = generate_trace(
            kind, NAMES, 600, seed=seed, arrivals="poisson",
            mean_interarrival=mean,
        )
        stamps = sorted({e.at for e in trace.events})
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        # First arrival gap counts too (clock starts at 0).
        gaps.insert(0, stamps[0])
        empirical = sum(gaps) / len(gaps)
        # Exponential-mean concentration at a few hundred samples; the
        # derandomized sweep makes the draw (and so the bound) exact.
        assert abs(empirical - mean) / mean < 0.2

    @COMMON
    @given(seed=st.integers(0, 10**6))
    def test_fixed_seed_is_byte_identical(self, seed):
        kwargs = dict(arrivals="poisson", mean_interarrival=700)
        one = generate_trace("hot-set", NAMES, 120, seed=seed, **kwargs)
        two = generate_trace("hot-set", NAMES, 120, seed=seed, **kwargs)
        assert one == two
        blob = json.dumps(
            [[e.op, e.task, e.at] for e in one.events], sort_keys=True
        )
        again = json.dumps(
            [[e.op, e.task, e.at] for e in two.events], sort_keys=True
        )
        assert blob == again

    @COMMON
    @given(seed=st.integers(0, 10**6))
    def test_timestamps_positive_and_nondecreasing(self, seed):
        trace = generate_trace(
            "round-robin", NAMES, 200, seed=seed, arrivals="poisson",
            mean_interarrival=3,  # heavy rounding: gaps clamp at >= 1
        )
        stamps = [e.at for e in trace.events]
        assert stamps[0] >= 1
        assert all(b >= a for a, b in zip(stamps, stamps[1:]))


class TestZipfMix:
    @COMMON
    @given(
        seed=st.integers(0, 10**6),
        alpha=st.sampled_from([1.2, 1.6, 2.0]),
    )
    def test_rank_frequencies_monotone_non_increasing(self, seed, alpha):
        # Arrival counts are merged over a block of consecutive seeds:
        # adjacent tail ranks differ by a few percent of probability
        # mass, so a single 800-event sample can invert them by noise
        # while the ~4000-arrival aggregate sits several sigma clear —
        # the property under test is the generator's rank law, not one
        # draw's luck.
        counts = [0] * len(NAMES)
        for block in range(5):
            trace = generate_trace(
                "zipf", NAMES, 800, seed=seed + block, zipf_alpha=alpha,
            )
            loads = [e.task for e in trace.events if e.op == "load"]
            for i, name in enumerate(NAMES):
                counts[i] += loads.count(name)
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert counts[0] > counts[-1]  # the skew is real, not flat

    @COMMON
    @given(seed=st.integers(0, 10**6))
    def test_higher_alpha_is_more_skewed(self, seed):
        def top_share(alpha):
            trace = generate_trace(
                "zipf", NAMES, 800, seed=seed, zipf_alpha=alpha,
            )
            loads = [e.task for e in trace.events if e.op == "load"]
            return loads.count(NAMES[0]) / len(loads)

        assert top_share(2.5) > top_share(1.1)


# -- shared-dictionary lifecycle under eviction churn ---------------------------


@pytest.fixture(scope="module")
def task_groups():
    """Two 2-container task groups, each sharing one external table."""
    groups = synthesize_task_scope_images(
        n_tasks=2, containers_per_task=2, seed=1
    )
    for _names, result in groups:
        assert result.shared  # the sweep is vacuous without kept tables
    return groups


def _controller(task_groups, fabric_w, fabric_h, cache_capacity):
    params = ArchParams(channel_width=8)
    fabric = FabricArch(
        params, fabric_w, fabric_h,
        {(x, y): "clb" for x in range(fabric_w) for y in range(fabric_h)},
    )
    ctrl = ReconfigurationController(
        fabric, ExternalMemory(), cache_capacity=cache_capacity
    )
    for names, result in task_groups:
        ctrl.store_task(names, result)
    return ctrl


class TestSharedDictLifecycleUnderChurn:
    """Seeded trace x capacity grid over real multi-container tasks."""

    #: (fabric head-room factor in halves, decode-cache capacity): from
    #: "exactly one container fits" (constant eviction, tables drop on
    #: every switch) to "everything fits" (tables stay resident), with
    #: the cache either thrashing (1 entry) or covering the set.
    GRID = [(2, 1), (2, 16), (3, 1), (3, 16), (4, 16)]

    @pytest.mark.parametrize("kind", ["hot-set", "round-robin", "zipf",
                                      "adversarial"])
    @pytest.mark.parametrize("headroom,capacity", GRID)
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_refcount_invariant_at_every_event(
        self, task_groups, kind, headroom, capacity, seed
    ):
        images = [
            (name, vbs)
            for names, result in task_groups
            for name, vbs in zip(names, result.containers)
        ]
        max_w = max(vbs.layout.width for _n, vbs in images)
        max_h = max(vbs.layout.height for _n, vbs in images)
        ctrl = _controller(
            task_groups, max_w * headroom // 2 + 1, max_h + 1, capacity
        )
        mgr = FabricManager(ctrl)

        def check_invariant(_event):
            referenced = {
                task.shared_dict_id
                for task in ctrl.resident.values()
                if task.shared_dict_id is not None
            }
            # Never dropped while referenced; dropped exactly at the
            # last unload: resident tables == referenced tables, always.
            assert set(ctrl.shared_dicts) == referenced

        trace = generate_trace(
            kind, [n for n, _v in images], 40, seed=seed
        )
        report = WorkloadSimulator(mgr, observer=check_invariant).run(trace)
        sd = report["shared_dicts"]
        assert sd["drops"] <= sd["faults"]
        assert set(sd["resident_at_end"]) == {
            task.shared_dict_id
            for task in ctrl.resident.values()
            if task.shared_dict_id is not None
        }

    def test_sweep_exercises_drops_and_refaults(self, task_groups):
        """The grid is not vacuous: tight fabrics really drop tables,
        and a re-arriving task faults its table back in."""
        images = [
            (name, vbs)
            for names, result in task_groups
            for name, vbs in zip(names, result.containers)
        ]
        max_w = max(vbs.layout.width for _n, vbs in images)
        max_h = max(vbs.layout.height for _n, vbs in images)
        ctrl = _controller(task_groups, max_w + 1, max_h + 1, 16)
        trace = generate_trace(
            "round-robin", [n for n, _v in images], 30, seed=1
        )
        report = WorkloadSimulator(FabricManager(ctrl)).run(trace)
        sd = report["shared_dicts"]
        assert sd["drops"] >= 1
        assert sd["faults"] > sd["drops"] or sd["faults"] >= 2
