"""The junction-level macro/cluster model: layout, adjacency, I/O numbering."""

import pytest

from repro.arch import ArchParams, get_cluster_model
from repro.arch.macro import (
    ClusterModel,
    iter_macro_junctions,
    junction_pair_offset,
)
from repro.errors import ArchitectureError


class TestJunctionLayout:
    def test_total_bits_equal_eq1_routing_bits(self, params5):
        total = sum(
            len(ends) * (len(ends) - 1) // 2
            for _off, ends in iter_macro_junctions(params5)
        )
        assert total == params5.routing_bits

    def test_offsets_contiguous(self, params5):
        expected = 0
        for off, ends in iter_macro_junctions(params5):
            assert off == expected
            expected += len(ends) * (len(ends) - 1) // 2

    def test_junction_counts(self, params5):
        junctions = list(iter_macro_junctions(params5))
        # W switch-box points + L lines x W crossings.
        assert len(junctions) == 5 + 7 * 5
        four_way = sum(1 for _o, e in junctions if len(e) == 4)
        three_way = sum(1 for _o, e in junctions if len(e) == 3)
        assert four_way == params5.ns + params5.nc_plus
        assert three_way == params5.nct

    def test_pair_offset_enumeration(self):
        assert junction_pair_offset(4, 0, 1) == 0
        assert junction_pair_offset(4, 0, 3) == 2
        assert junction_pair_offset(4, 1, 2) == 3
        assert junction_pair_offset(4, 2, 3) == 5
        assert junction_pair_offset(3, 1, 2) == 2

    def test_pair_offset_validation(self):
        with pytest.raises(ArchitectureError):
            junction_pair_offset(4, 2, 2)
        with pytest.raises(ArchitectureError):
            junction_pair_offset(3, 0, 3)


class TestMacroModel:
    def test_switch_count_matches_eq1(self, params5):
        model = get_cluster_model(params5, 1)
        assert model.num_switches == params5.routing_bits

    def test_io_numbering_paper_order(self, params5):
        model = get_cluster_model(params5, 1)
        W = 5
        assert model.io_count == 4 * W + 7
        assert model.null_io == 27
        # WEST tracks, EAST tracks, SOUTH, NORTH, then pins.
        assert model.io_name(0).startswith("WEST")
        assert model.io_name(W).startswith("EAST")
        assert model.io_name(2 * W).startswith("SOUTH")
        assert model.io_name(3 * W).startswith("NORTH")
        assert model.io_name(4 * W).startswith("PIN")
        assert model.io_name(model.null_io) == "NULL"

    def test_io_segments_unique(self, params5):
        model = get_cluster_model(params5, 1)
        assert len(set(model.io_to_seg)) == model.io_count

    def test_adjacency_symmetric(self, params5):
        model = get_cluster_model(params5, 1)
        for seg, nbrs in enumerate(model.adjacency):
            for nbr, sw in nbrs:
                assert (seg, sw) in model.adjacency[nbr]

    def test_terminal_segments_are_io_segments(self, params5):
        model = get_cluster_model(params5, 1)
        assert model.terminal_segs == frozenset(model.io_to_seg)

    def test_pin_line_segments_reach_pin(self, params5):
        model = get_cluster_model(params5, 1)
        for p in range(7):
            io = 4 * 5 + p
            segs = model.pin_line_segments(io)
            assert len(segs) == 5  # W segments per line
            assert segs[0] == model.io_to_seg[io]  # segment 0 is the pin

    def test_pin_io_fields_roundtrip(self, params5):
        model = get_cluster_model(params5, 2)
        for io in range(4 * 2 * 5, model.io_count):
            i, j, p = model.pin_io_fields(io)
            from repro.vbs.extract import pin_io as vbs_pin_io
            # Reconstruct through the extraction-side formula.
            from repro.vbs.format import VbsLayout
            layout = VbsLayout(params5, 2, 4, 4)
            assert vbs_pin_io(layout, i, j, p) == io

    def test_pin_io_fields_rejects_boundary(self, params5):
        model = get_cluster_model(params5, 1)
        with pytest.raises(ArchitectureError):
            model.pin_io_fields(3)


class TestClusterComposition:
    def test_cluster_switch_count_scales(self, params5):
        for c in (1, 2, 3):
            model = get_cluster_model(params5, c)
            assert model.num_switches == c * c * params5.routing_bits

    def test_internal_boundary_merging(self, params5):
        model = ClusterModel(params5, 2)
        # Macro (1,0)'s west switch-box stub is macro (0,0)'s outermost
        # ChanX segment: the canonical key must collapse them.
        nx = len(params5.chanx_pins)
        assert model.canonical(1, 0, ("sbw", 2)) == (0, 0, ("tx", 2, nx))
        ny = len(params5.chany_pins)
        assert model.canonical(0, 1, ("sbs", 4)) == (0, 0, ("ty", 4, ny))

    def test_cluster_io_count(self, params5):
        model = get_cluster_model(params5, 3)
        assert model.io_count == params5.cluster_io_count(3)

    def test_interior_crossings_not_terminal(self, params5):
        model = get_cluster_model(params5, 2)
        nx = len(params5.chanx_pins)
        interior = model.seg_ids[(0, 0, ("tx", 0, nx))]
        # The wire crossing between cluster members is NOT a cluster
        # boundary: routes may pass through it freely.
        assert interior not in model.terminal_segs

    def test_cached_factory_identity(self, params5):
        assert get_cluster_model(params5, 2) is get_cluster_model(params5, 2)

    def test_rejects_bad_cluster_size(self, params5):
        with pytest.raises(ArchitectureError):
            ClusterModel(params5, 0)
