"""Tile-pattern RRG: equivalence with the explicit CSR, guards, cache."""

from __future__ import annotations

import pytest

from repro.arch.fabric import FabricArch
from repro.arch.params import ArchParams
from repro.arch.rrg import (
    COMPRESSED_AUTO_NODES,
    MAX_EXPLICIT_NODES,
    RoutingGraph,
    TilePatternRoutingGraph,
    clear_routing_graph_cache,
    routing_graph_for,
)
from repro.errors import RoutingError

#: Every boundary-degeneracy class a grid can hit: 1-wide, 2-wide (no
#: interior column), odd/even, and square/rectangular shapes.
SHAPES = [(1, 1), (1, 4), (2, 2), (2, 5), (3, 3), (4, 2), (5, 4), (6, 6)]


@pytest.mark.parametrize("w", [3, 5])
@pytest.mark.parametrize("shape", SHAPES)
def test_compressed_matches_explicit(shape, w):
    """Node-for-node identical adjacency — values AND neighbor order."""
    fabric = FabricArch(ArchParams(channel_width=w), shape[0], shape[1], {})
    explicit = RoutingGraph(fabric)
    compressed = TilePatternRoutingGraph(fabric)
    assert compressed.num_nodes == explicit.num_nodes
    assert compressed.num_edges == explicit.num_edges
    for node in range(explicit.num_nodes):
        assert compressed.neighbor_list(node) == explicit.neighbor_list(node)
        assert compressed.degree(node) == explicit.degree(node)


def test_compressed_iter_edges_matches(params5):
    fabric = FabricArch(params5, 4, 3, {})
    explicit = RoutingGraph(fabric)
    compressed = TilePatternRoutingGraph(fabric)
    assert list(compressed.iter_edges()) == list(explicit.iter_edges())


def test_compressed_id_helpers_match(params5):
    fabric = FabricArch(params5, 3, 3, {})
    explicit = RoutingGraph(fabric)
    compressed = TilePatternRoutingGraph(fabric)
    for node in range(explicit.num_nodes):
        assert compressed.node_kind(node) == explicit.node_kind(node)
        assert compressed.node_str(node) == explicit.node_str(node)
        assert compressed.node_x_of(node) == explicit.node_x_of(node)
        assert compressed.node_y_of(node) == explicit.node_y_of(node)


def test_explicit_build_rejects_int32_overflow():
    """A fabric past the CSR's id space fails fast with a clear error."""
    fabric = FabricArch(ArchParams(channel_width=20), 10**5, 10**5, {})
    with pytest.raises(RoutingError, match="int32"):
        RoutingGraph(fabric)


def test_compressed_handles_id_space_past_int32():
    """The pattern graph has no CSR, so giant fabrics just work."""
    fabric = FabricArch(ArchParams(channel_width=20), 10**5, 10**5, {})
    rrg = TilePatternRoutingGraph(fabric)
    assert rrg.num_nodes > MAX_EXPLICIT_NODES
    # An interior node deep in the fabric still yields sane neighbors.
    node = rrg.xtrk(50_000, 50_000, 0)
    nbs = rrg.neighbor_list(node)
    assert nbs and all(0 <= n < rrg.num_nodes for n in nbs)


class TestRoutingGraphCache:
    def setup_method(self):
        clear_routing_graph_cache()

    def teardown_method(self):
        clear_routing_graph_cache()

    def test_same_structure_reuses_graph(self, params8):
        a = routing_graph_for(FabricArch(params8, 3, 3, {}))
        b = routing_graph_for(FabricArch(params8, 3, 3, {}))
        assert a is b

    def test_different_structure_rebuilds(self, params8, params5):
        a = routing_graph_for(FabricArch(params8, 3, 3, {}))
        assert routing_graph_for(FabricArch(params8, 4, 3, {})) is not a
        assert routing_graph_for(FabricArch(params5, 3, 3, {})) is not a

    def test_compressed_flag_is_part_of_the_key(self, params8):
        fabric = FabricArch(params8, 3, 3, {})
        explicit = routing_graph_for(fabric, compressed=False)
        compressed = routing_graph_for(fabric, compressed=True)
        assert isinstance(explicit, RoutingGraph)
        assert isinstance(compressed, TilePatternRoutingGraph)
        assert explicit is not compressed
        assert routing_graph_for(fabric, compressed=True) is compressed

    def test_auto_picks_compressed_past_threshold(self, params8):
        small = routing_graph_for(FabricArch(params8, 3, 3, {}))
        assert isinstance(small, RoutingGraph)
        # 200x200 at W=8 is past COMPRESSED_AUTO_NODES.
        big_fabric = FabricArch(params8, 200, 200, {})
        big = routing_graph_for(big_fabric)
        assert isinstance(big, TilePatternRoutingGraph)
        assert big.num_nodes > COMPRESSED_AUTO_NODES

    def test_clear_forgets_entries(self, params8):
        fabric = FabricArch(params8, 3, 3, {})
        a = routing_graph_for(fabric)
        clear_routing_graph_cache()
        assert routing_graph_for(fabric) is not a

    def test_lru_eviction_keeps_recent(self, params5):
        fabrics = [FabricArch(params5, 3 + i, 3, {}) for i in range(9)]
        graphs = [routing_graph_for(f) for f in fabrics]
        # Capacity is 8: the first entry fell out, the last eight stayed.
        assert routing_graph_for(fabrics[0]) is not graphs[0]
        assert routing_graph_for(fabrics[-1]) is graphs[-1]
