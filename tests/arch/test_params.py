"""Eq. (1) and Section II-B numerics — the paper's worked example is law."""

import pytest

from repro.arch import ArchParams
from repro.errors import ArchitectureError


class TestEquationOne:
    def test_paper_example_w5(self, params5):
        # Section II-B: NLB = 65, NC+ = 28, NCT = 7, Nraw = 284 for W = 5.
        assert params5.nlb == 65
        assert params5.nc_plus == 28
        assert params5.nct == 7
        assert params5.ns == 5
        assert params5.nraw == 284

    def test_formula_consistency(self):
        for w in (2, 5, 8, 20, 32):
            p = ArchParams(channel_width=w)
            assert p.nraw == p.nlb + 6 * (p.ns + p.nc_plus) + 3 * p.nct

    def test_normalized_evaluation_width(self):
        # The experiments normalize to W = 20.
        p = ArchParams(channel_width=20)
        assert p.nraw == 65 + 6 * (20 + 7 * 19) + 3 * 7 == 1004

    def test_routing_bits_excludes_logic(self, params5):
        assert params5.routing_bits == 284 - 65


class TestIoSpace:
    def test_paper_m_is_five(self, params5):
        # M = ceil(log2(4*5 + 7 + 1)) = 5.
        assert params5.io_code_bits(1) == 5

    def test_paper_breakeven_28(self, params5):
        # floor(Nraw / 2M) = floor(284 / 10) = 28 connections.
        assert params5.connection_breakeven(1) == 28

    def test_io_count_formula(self):
        p = ArchParams(channel_width=20)
        assert p.cluster_io_count(1) == 4 * 20 + 7
        assert p.cluster_io_count(2) == 4 * 2 * 20 + 4 * 7
        assert p.cluster_io_count(3) == 4 * 3 * 20 + 9 * 7

    def test_m_grows_with_cluster(self):
        p = ArchParams(channel_width=20)
        widths = [p.io_code_bits(c) for c in (1, 2, 4, 8)]
        assert widths == sorted(widths)
        assert widths[0] == 7  # ceil(log2(88))

    def test_route_count_field_matches_paper_magnitude(self, params5):
        # Paper uses ceil(log2(2W)) = 4 bits at W = 5, L = 7; ours matches
        # that width while reserving one sentinel value.
        assert params5.route_count_bits(1) == 4

    def test_max_routes_positive(self):
        p = ArchParams(channel_width=8)
        for c in (1, 2, 4):
            assert p.max_routes(c) > 0


class TestValidation:
    def test_rejects_narrow_channel(self):
        with pytest.raises(ArchitectureError):
            ArchParams(channel_width=1)

    def test_rejects_bad_pin_partition(self):
        with pytest.raises(ArchitectureError):
            ArchParams(chanx_pins=(0, 1, 2), chany_pins=(3, 4, 5))  # pin 6 missing
        with pytest.raises(ArchitectureError):
            ArchParams(chanx_pins=(0, 1, 2, 6), chany_pins=(3, 4, 4))

    def test_lut_size_drives_pins(self):
        p = ArchParams(lut_size=4, chanx_pins=(0, 1, 4), chany_pins=(2, 3))
        assert p.num_lb_pins == 5
        assert p.nlb == 17

    def test_describe_mentions_nraw(self, params5):
        assert "284" in params5.describe()
