"""Fabric grid and track-level routing resource graph."""

import pytest

from repro.arch import (
    ArchParams,
    FabricArch,
    RoutingGraph,
    KIND_LINE,
    KIND_XTRK,
    KIND_YTRK,
)
from repro.errors import ArchitectureError


class TestFabricArch:
    def test_island_layout(self, params5):
        fabric = FabricArch.island(params5, 4)
        assert fabric.width == fabric.height == 6
        assert len(fabric.cells_of_type("clb")) == 16
        assert len(fabric.cells_of_type("iob")) == 36 - 16
        assert fabric.type_name_at(0, 0) == "iob"
        assert fabric.type_name_at(2, 3) == "clb"

    def test_site_count_uses_capacity(self, params5):
        fabric = FabricArch.island(params5, 3)
        assert fabric.site_count("iob") == 2 * len(fabric.cells_of_type("iob"))
        assert fabric.site_count("clb") == 9

    def test_out_of_range_cell(self, params5):
        fabric = FabricArch.island(params5, 2)
        with pytest.raises(ArchitectureError):
            fabric.type_name_at(9, 0)

    def test_global_segment_stub_canonicalization(self, params5):
        fabric = FabricArch.island(params5, 3)
        nx = len(params5.chanx_pins)
        # Interior stub: belongs to the west neighbour's wire.
        assert fabric.global_segment(2, 1, ("sbw", 0)) == ("tx", 1, 1, 0, nx)
        # Fabric-edge stub: dangling wire keeps its own name.
        assert fabric.global_segment(0, 1, ("sbw", 0)) == ("sbw", 0, 1, 0)

    def test_rejects_unknown_type(self, params5):
        with pytest.raises(ArchitectureError):
            FabricArch(params5, 2, 2, {(0, 0): "dsp"})

    def test_rejects_out_of_grid_mapping(self, params5):
        with pytest.raises(ArchitectureError):
            FabricArch(params5, 2, 2, {(5, 0): "clb"})


class TestRoutingGraph:
    @pytest.fixture(scope="class")
    def rrg(self, params5):
        return RoutingGraph(FabricArch.island(params5, 3))

    def test_node_count(self, rrg, params5):
        per_cell = 2 * params5.channel_width + params5.num_lb_pins
        assert rrg.num_nodes == 25 * per_cell

    def test_node_id_roundtrip(self, rrg):
        for (x, y, t) in [(0, 0, 0), (2, 3, 4), (4, 4, 1)]:
            node = rrg.xtrk(x, y, t)
            assert rrg.node_cell(node) == (x, y)
            assert rrg.node_kind(node) == (KIND_XTRK, t)
        node = rrg.ytrk(1, 2, 3)
        assert rrg.node_kind(node) == (KIND_YTRK, 3)
        node = rrg.line(3, 1, 6)
        assert rrg.node_kind(node) == (KIND_LINE, 6)

    def test_adjacency_symmetric(self, rrg):
        for a in range(0, rrg.num_nodes, 7):  # sampled
            for b in rrg.neighbors(a):
                assert a in rrg.neighbors(int(b))

    def test_connection_box_edges(self, rrg, params5):
        # A ChanX pin line touches every ChanX track of its cell.
        ln = rrg.line(2, 2, params5.chanx_pins[0])
        nbrs = set(int(n) for n in rrg.neighbors(ln))
        assert {rrg.xtrk(2, 2, t) for t in range(5)} <= nbrs
        # ...and no ChanY track.
        assert not ({rrg.ytrk(2, 2, t) for t in range(5)} & nbrs)

    def test_switch_box_disjoint(self, rrg):
        # SB(2,2) joins only same-index tracks of the four sides.
        a = rrg.xtrk(1, 2, 3)  # west wire, track 3
        nbrs = set(int(n) for n in rrg.neighbors(a))
        assert rrg.xtrk(2, 2, 3) in nbrs
        assert rrg.ytrk(2, 2, 3) in nbrs
        assert rrg.ytrk(2, 1, 3) in nbrs
        assert rrg.xtrk(2, 2, 2) not in nbrs  # different track index

    def test_edge_of_fabric_degree(self, rrg):
        # A corner cell's wires have fewer switch-box partners.
        corner = rrg.xtrk(0, 0, 0)
        interior = rrg.xtrk(2, 2, 0)
        assert rrg.degree(corner) < rrg.degree(interior)

    def test_node_str_readable(self, rrg):
        assert rrg.node_str(rrg.xtrk(1, 2, 3)) == "XTRK(1,2,3)"
        assert rrg.node_str(rrg.line(0, 0, 6)) == "LINE(0,0,6)"
