"""Block types and their logic-data codecs."""

import pytest

from repro.arch import (
    ArchParams,
    decode_clb_config,
    decode_iob_config,
    encode_clb_config,
    encode_iob_config,
    make_clb_type,
    make_iob_type,
)
from repro.arch.blocktype import DIR_IN, DIR_OUT, IOB_PAD_PORTS, PortDef, BlockType
from repro.errors import ArchitectureError


class TestBlockTypes:
    def test_clb_ports(self, params5):
        clb = make_clb_type(params5)
        assert len(clb.input_ports()) == 6
        assert len(clb.output_ports()) == 1
        assert clb.port("out").macro_pin == 6
        assert clb.port("in3").macro_pin == 3

    def test_iob_pads_on_distinct_pins(self, params5):
        iob = make_iob_type(params5)
        pins = {p.macro_pin for p in iob.ports}
        assert len(pins) == 4
        assert iob.capacity == 2
        # Pads drive through different channels (pin 6 on ChanX, 5 on ChanY).
        assert iob.port(IOB_PAD_PORTS[0]["o"]).macro_pin in params5.chanx_pins
        assert iob.port(IOB_PAD_PORTS[1]["o"]).macro_pin in params5.chany_pins

    def test_unknown_port_rejected(self, params5):
        clb = make_clb_type(params5)
        with pytest.raises(ArchitectureError):
            clb.port("nope")

    def test_duplicate_port_name_rejected(self):
        with pytest.raises(ArchitectureError):
            BlockType("bad", (PortDef("a", 0, DIR_IN), PortDef("a", 1, DIR_OUT)))

    def test_shared_macro_pin_rejected(self):
        with pytest.raises(ArchitectureError):
            BlockType("bad", (PortDef("a", 0, DIR_IN), PortDef("b", 0, DIR_OUT)))

    def test_bad_direction_rejected(self):
        with pytest.raises(ArchitectureError):
            PortDef("a", 0, "sideways")


class TestConfigCodecs:
    def test_clb_roundtrip(self, params5):
        tt = 0x123456789ABCDEF0
        bits = encode_clb_config(params5, tt, True)
        assert len(bits) == params5.nlb
        assert decode_clb_config(params5, bits) == (tt, True)

    def test_clb_ff_bit_position(self, params5):
        bits = encode_clb_config(params5, 0, True)
        assert bits.count() == 1
        assert bits[2 ** params5.lut_size] == 1

    def test_clb_rejects_oversized_table(self, params5):
        with pytest.raises(ArchitectureError):
            encode_clb_config(params5, 1 << 64, False)

    def test_iob_roundtrip(self, params5):
        bits = encode_iob_config(params5, (True, False), (False, True))
        assert len(bits) == params5.nlb
        out_en, in_en = decode_iob_config(params5, bits)
        assert out_en == (True, False)
        assert in_en == (False, True)

    def test_decode_length_checked(self, params5):
        from repro.utils.bitarray import BitArray

        with pytest.raises(ArchitectureError):
            decode_clb_config(params5, BitArray(3))
        with pytest.raises(ArchitectureError):
            decode_iob_config(params5, BitArray(3))
