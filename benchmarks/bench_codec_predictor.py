"""Codec-predictor trial-reduction artifact (the CI bench-smoke job).

Encodes a reduced-scale eval corpus twice with ``codecs="auto"`` — once
exhaustively (no predictor) and once replaying a predictor store warmed
on the same corpus — and writes the per-point and total trial counts to
a JSON artifact::

    PYTHONPATH=src python benchmarks/bench_codec_predictor.py \
        --out predictor-smoke.json

Two gates, both hard failures (exit 1):

* **Bytes unchanged.**  Every container produced under the warm store
  must be byte-identical to the exhaustive encode — the predictor's
  verify-and-fallback contract (see ``repro.vbs.predictor``).
* **>= 2x fewer trials.**  Summed across the corpus, the warm replay
  must charge at most half the exhaustive ``family_trials``.  The gate
  is on the totals, not per point: small cluster-3 points sit just
  under 2x on their own while the corpus total clears it comfortably.

The conservation law ``warm_trials + warm_skipped == exhaustive_trials``
is also checked per point — the predictor only ever *skips* trials, it
never invents or double-counts them.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.eval.experiments import flow_for
from repro.bitstream.expand import expand_routing
from repro.vbs.encode import encode_flow
from repro.vbs.devirt import DecodeMemo
from repro.vbs.predictor import CodecPredictor

#: Reduced-scale smoke corpus: one Table II proxy plus the synthetic
#: replicated-datapath workload (see ``repro.eval.experiments.EVAL_EXTRAS``).
SMOKE_NAMES = ("ex5p", "dpath")
SMOKE_CLUSTERS = (1, 2, 3)
SMOKE_SCALE = 0.08
SMOKE_CHANNEL_WIDTH = 8

#: Minimum exhaustive/warm trial ratio over the corpus total.
MIN_TRIAL_RATIO = 2.0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path,
                        default=Path("predictor-smoke.json"))
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    summary = _summarize(args.seed)
    args.out.write_text(json.dumps(summary, indent=1, sort_keys=True) + "\n")

    total = summary["totals"]
    print(f"exhaustive trials: {total['exhaustive_trials']}")
    print(f"warm trials:       {total['warm_trials']} "
          f"(skipped {total['warm_skipped']})")
    print(f"trial ratio:       {total['trial_ratio']:.2f}x")
    print(f"wrote {args.out}")

    failed = False
    if not summary["all_bytes_match"]:
        bad = [f"{p['name']}/c{p['cluster']}"
               for p in summary["points"] if not p["bytes_match"]]
        print(f"ERROR: warm replay changed bytes at {', '.join(bad)}",
              file=sys.stderr)
        failed = True
    if total["trial_ratio"] < MIN_TRIAL_RATIO:
        print(f"ERROR: warm replay saved only "
              f"{total['trial_ratio']:.2f}x trials "
              f"(< {MIN_TRIAL_RATIO:.0f}x gate)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def _summarize(seed: int) -> dict:
    predictor = CodecPredictor()
    memo = DecodeMemo()
    points = []
    jobs = []
    for name in SMOKE_NAMES:
        flow = flow_for(name, SMOKE_CHANNEL_WIDTH, SMOKE_SCALE, seed)
        config = expand_routing(
            flow.design, flow.placement, flow.routing, flow.rrg
        )
        jobs.append((name, flow, config))

    # Pass 1: exhaustive baseline.  Pass 2: the same encode with a cold
    # predictor — byte-identical by construction, and it warms the
    # store.  Pass 3: warm replay, the measured configuration.
    for name, flow, config in jobs:
        for c in SMOKE_CLUSTERS:
            exhaustive = encode_flow(
                flow, config, cluster_size=c, codecs="auto", memo=memo
            )
            encode_flow(
                flow, config, cluster_size=c, codecs="auto", memo=memo,
                predictor=predictor,
            )
    for name, flow, config in jobs:
        for c in SMOKE_CLUSTERS:
            exhaustive = encode_flow(
                flow, config, cluster_size=c, codecs="auto", memo=memo
            )
            warm = encode_flow(
                flow, config, cluster_size=c, codecs="auto", memo=memo,
                predictor=predictor,
            )
            ex_bytes = exhaustive.to_bits().to_bytes()
            warm_bytes = warm.to_bits().to_bytes()
            conserved = (
                warm.stats.family_trials + warm.stats.family_trials_skipped
                == exhaustive.stats.family_trials
            )
            points.append({
                "name": name,
                "cluster": c,
                "size_bits": exhaustive.size_bits,
                "exhaustive_trials": exhaustive.stats.family_trials,
                "warm_trials": warm.stats.family_trials,
                "warm_skipped": warm.stats.family_trials_skipped,
                "bytes_match": warm_bytes == ex_bytes,
                "trials_conserved": conserved,
            })

    ex_total = sum(p["exhaustive_trials"] for p in points)
    warm_total = sum(p["warm_trials"] for p in points)
    return {
        "corpus": list(SMOKE_NAMES),
        "clusters": list(SMOKE_CLUSTERS),
        "scale": SMOKE_SCALE,
        "channel_width": SMOKE_CHANNEL_WIDTH,
        "points": points,
        "all_bytes_match": all(p["bytes_match"] for p in points),
        "all_trials_conserved": all(p["trials_conserved"] for p in points),
        "totals": {
            "exhaustive_trials": ex_total,
            "warm_trials": warm_total,
            "warm_skipped": sum(p["warm_skipped"] for p in points),
            "trial_ratio": (ex_total / warm_total) if warm_total else 0.0,
        },
        "predictor_cells": len(predictor.snapshot()),
    }


if __name__ == "__main__":
    sys.exit(main())
