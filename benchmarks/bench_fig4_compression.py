"""E2 — Figure 4: raw bit-stream vs Virtual Bit-Stream size.

Benchmarks vbsgen (cluster size 1) on a reduced-scale Table II proxy and
reports the compression ratio; when the full-scale results cache exists it
is echoed into ``extra_info`` so the benchmark output carries the paper
comparison (paper average: VBS = 41% of raw).
"""

from repro.bitstream import RawBitstream
from repro.vbs import decode_vbs, encode_flow


def test_fig4_encode_benchmark(benchmark, bench_flow, bench_config):
    raw_bits = RawBitstream.size_for(
        bench_flow.params, bench_flow.fabric.width, bench_flow.fabric.height
    )

    vbs = benchmark(encode_flow, bench_flow, bench_config, cluster_size=1)

    assert vbs.size_bits < raw_bits
    benchmark.extra_info["raw_bits"] = raw_bits
    benchmark.extra_info["vbs_bits"] = vbs.size_bits
    benchmark.extra_info["ratio"] = round(vbs.size_bits / raw_bits, 4)
    benchmark.extra_info["raw_fallback_clusters"] = vbs.stats.clusters_raw


def test_fig4_codec_picker_benchmark(benchmark, bench_flow, bench_config):
    """Cost-driven codec selection: the registry beats single-coding vbsgen.

    The picker chooses the smallest registered coding per cluster; the
    zero-skip run-length codec must win on at least some sparse-logic
    clusters of the benchmark netlist.
    """
    strict = encode_flow(bench_flow, bench_config, cluster_size=1)

    vbs = benchmark(
        encode_flow, bench_flow, bench_config, cluster_size=1, codecs="auto"
    )

    assert vbs.size_bits <= strict.size_bits
    counts = vbs.stats.codec_counts
    assert counts.get("rle", 0) > 0, (
        "the fourth codec should win on sparse clusters"
    )
    benchmark.extra_info["codec_counts"] = counts
    benchmark.extra_info["strict_bits"] = strict.size_bits
    benchmark.extra_info["auto_bits"] = vbs.size_bits
    benchmark.extra_info["picker_gain"] = round(
        1 - vbs.size_bits / strict.size_bits, 4
    )


def test_fig4_codec_family_benchmark(benchmark, bench_flow, bench_config):
    """The VERSION 3 family (dictionary/delta/Golomb) vs. the PR-1 set.

    Monotone improvement on the benchmark netlist: the family may never
    emit a larger container than the VERSION 2 codec set, and at least
    one of the new codecs must win records.
    """
    pr1 = encode_flow(
        bench_flow, bench_config, cluster_size=1,
        codecs=["list", "raw", "compact", "rle"],
    )

    vbs = benchmark(
        encode_flow, bench_flow, bench_config, cluster_size=1, codecs="auto"
    )

    assert vbs.size_bits <= pr1.size_bits
    counts = vbs.stats.codec_counts
    assert any(
        counts.get(name, 0) for name in ("dict", "delta", "golomb", "eliasg")
    ), "the VERSION 3 family should win records on the benchmark netlist"
    benchmark.extra_info["codec_counts"] = counts
    benchmark.extra_info["pr1_bits"] = pr1.size_bits
    benchmark.extra_info["family_bits"] = vbs.size_bits
    benchmark.extra_info["family_gain"] = round(
        1 - vbs.size_bits / pr1.size_bits, 4
    )
    benchmark.extra_info["container_version"] = vbs.wire_version
    benchmark.extra_info["dict_patterns"] = len(vbs.layout.dict_table)


def test_fig4_decode_benchmark(benchmark, bench_flow, bench_config):
    vbs = encode_flow(bench_flow, bench_config, cluster_size=1)
    bits = vbs.to_bits()

    cfg, stats = benchmark(decode_vbs, bits)

    assert cfg.occupied_cells()
    benchmark.extra_info["router_work"] = stats.router_work


def test_fig4_fullscale_numbers(fullscale_results):
    """Echo the cached full-scale Figure 4 rows (paper-vs-measured)."""
    if not fullscale_results:
        import pytest

        pytest.skip("run `python -m repro.eval.run_all` first")
    ratios = []
    for name, row in sorted(fullscale_results.items()):
        c1 = row["clusters"].get("1")
        if c1 is None:
            continue
        ratios.append(c1["ratio"])
        assert c1["vbs_bits"] < row["raw_bits"], (
            f"{name}: VBS must beat raw (paper: consistently smaller)"
        )
    assert ratios, "cache present but holds no cluster-1 rows"
    avg = sum(ratios) / len(ratios)
    # Paper: average 41% of raw (compression factor > 2x). Accept a broad
    # band: the proxies are synthetic.
    assert 0.10 < avg < 0.60
