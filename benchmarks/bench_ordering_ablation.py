"""A1 — ablation: connection-ordering strategies vs decode success.

Section III-B's feedback loop re-orders connection lists when the online
router fails.  This bench measures how hard each ordering family has to
work: for every listed cluster of the bench circuit we try (a) only the
natural order, (b) the full heuristic ladder, and report how many clusters
each settles.
"""

import pytest

from repro.arch import get_cluster_model
from repro.errors import DevirtualizationError
from repro.vbs import ClusterDecoder, candidate_orders, extract_components
from repro.vbs.format import VbsLayout


@pytest.fixture(scope="module")
def cluster_lists(bench_flow):
    layout = VbsLayout(
        bench_flow.params, 1, bench_flow.fabric.width,
        bench_flow.fabric.height,
    )
    comps = extract_components(
        bench_flow.design, bench_flow.placement, bench_flow.routing,
        bench_flow.rrg, layout,
    )
    model = get_cluster_model(bench_flow.params, 1)
    lists = [
        [p for comp in comp_list for p in comp.pairs()]
        for comp_list in comps.values()
    ]
    return model, layout, lists


def _success_stats(model, lists, max_orders):
    solved = failed = orders_used = 0
    for pairs in lists:
        done = False
        for i, order in enumerate(
            candidate_orders(pairs, model, max_orders=max_orders)
        ):
            try:
                ClusterDecoder(model).decode(order)
            except DevirtualizationError:
                continue
            solved += 1
            orders_used += i + 1
            done = True
            break
        if not done:
            failed += 1
    return solved, failed, orders_used


@pytest.mark.parametrize("max_orders", [1, 4, 12])
def test_ordering_ladder(benchmark, cluster_lists, max_orders):
    model, _layout, lists = cluster_lists

    solved, failed, orders_used = benchmark.pedantic(
        _success_stats, args=(model, lists, max_orders), rounds=1,
        iterations=1,
    )
    total = solved + failed
    benchmark.extra_info["clusters"] = total
    benchmark.extra_info["solved"] = solved
    benchmark.extra_info["fallback_rate"] = round(failed / total, 4)
    benchmark.extra_info["avg_orders_per_solved"] = (
        round(orders_used / solved, 3) if solved else None
    )
    # With the full ladder the fallback rate must be (near) zero.
    if max_orders >= 12:
        assert failed <= total * 0.02


def test_more_orders_never_hurt(cluster_lists):
    model, _layout, lists = cluster_lists
    s1, _f1, _ = _success_stats(model, lists, 1)
    s12, _f12, _ = _success_stats(model, lists, 12)
    assert s12 >= s1
