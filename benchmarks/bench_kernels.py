"""Bit-kernel backend speedup artifact (the CI kernel-smoke job).

Times every vectorized kernel primitive against its pure-Python fallback
on inputs sized like real container workloads and writes the per-kernel
speedups to a JSON artifact::

    PYTHONPATH=src python benchmarks/bench_kernels.py --out BENCH_kernels.json

The gate: the geometric mean of the primitive speedups must be at least
``--min-speedup`` (default 2) — a numpy backend slower than the batch
fallback it replaces means the import-time binding or the small-input
thresholds regressed.  Without numpy there is nothing to compare; the
script reports the fallback-only backend and exits cleanly.

An ``--end-to-end`` JSON file (encode/load wall-clock measurements taken
with an interleaved before/after harness) is folded into the artifact
verbatim when given; the committed ``BENCH_kernels.json`` carries one.
"""

from __future__ import annotations

import argparse
import json
import math
import random
import sys
import time
from pathlib import Path

from repro.utils import bitkernels as bk

#: (kernel name, fallback thunk, vectorized thunk) built over one shared
#: deterministic workload; sizes are far past the small-input thresholds
#: so the vectorized branches run.
_RNG_SEED = 20150905


def _workloads():
    rng = random.Random(_RNG_SEED)
    buf = bytearray(rng.randrange(256) for _ in range(1 << 18))
    other = bytearray(rng.randrange(256) for _ in range(1 << 18))
    nbits = len(buf) * 8
    positions = sorted(rng.sample(range(nbits), 50_000))
    width = 13
    values = [rng.randrange(1 << width) for _ in range(50_000)]
    packed = bk.py_pack_fields(values, width)
    cases = [
        ("popcount", lambda: bk.py_popcount(buf),
         lambda: bk.np_popcount(buf)),
        ("xor_bytes", lambda: bk.py_xor_bytes(buf, other),
         lambda: bk.np_xor_bytes(buf, other)),
        ("find_ones", lambda: bk.py_find_ones(buf, nbits),
         lambda: bk.np_find_ones(buf, nbits)),
        ("set_bits", lambda: bk.py_set_bits(nbits, positions),
         lambda: bk.np_set_bits(nbits, positions)),
        ("pack_fields", lambda: bk.py_pack_fields(values, width),
         lambda: bk.np_pack_fields(values, width)),
        ("unpack_fields",
         lambda: bk.py_unpack_fields(packed, 0, width, len(values)),
         lambda: bk.np_unpack_fields(packed, 0, width, len(values))),
    ]
    return cases


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_kernels.json"))
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="gate on the geomean primitive speedup")
    parser.add_argument("--end-to-end", type=Path, default=None,
                        help="JSON with encode/load wall-clock numbers to "
                             "embed in the artifact")
    args = parser.parse_args(argv)

    summary: dict = {"backend": bk.BACKEND, "kernels": {}}
    if args.end_to_end is not None:
        summary["end_to_end"] = json.loads(args.end_to_end.read_text())

    if not bk.HAVE_NUMPY:
        summary["skipped"] = "numpy backend not active; nothing to compare"
        args.out.write_text(json.dumps(summary, indent=1, sort_keys=True)
                            + "\n")
        print("numpy backend not active — fallback-only run, gate skipped")
        print(f"wrote {args.out}")
        return 0

    speedups = []
    for name, fallback, vectorized in _workloads():
        # Sanity first: both paths must be bit-exact before being timed.
        if fallback() != vectorized():
            print(f"ERROR: {name}: backend results differ", file=sys.stderr)
            return 1
        t_py = _best_of(fallback, args.repeats)
        t_np = _best_of(vectorized, args.repeats)
        speedup = t_py / t_np if t_np > 0 else float("inf")
        speedups.append(speedup)
        summary["kernels"][name] = {
            "python_s": round(t_py, 6),
            "numpy_s": round(t_np, 6),
            "speedup": round(speedup, 2),
        }
        print(f"{name:14s} python {t_py * 1e3:8.3f} ms   "
              f"numpy {t_np * 1e3:8.3f} ms   {speedup:6.1f}x")

    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    summary["geomean_speedup"] = round(geomean, 2)
    args.out.write_text(json.dumps(summary, indent=1, sort_keys=True) + "\n")
    print(f"geomean speedup: {geomean:.1f}x")
    print(f"wrote {args.out}")
    if geomean < args.min_speedup:
        print(f"ERROR: geomean speedup {geomean:.2f}x below the "
              f"{args.min_speedup}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
