"""V3-vs-V4 compression-ratio artifact (the CI bench-smoke job).

Runs the cost-driven codec picker at both codec generations — the full
VERSION 3 set versus the VERSION 4 family (wide tags, adaptive Rice,
best-of-k delta) — over a reduced-scale eval corpus that includes the
replicated-datapath workload the VERSION 4 codecs target, and writes the
summed totals to a JSON artifact::

    PYTHONPATH=src python benchmarks/bench_v4_ratio.py --out bench_v4_ratio.json

The full-scale equivalent is written by ``python -m repro.eval.run_all``
next to its figure CSVs (same schema, same ``v4_ratio_summary`` code
path).  The gate: ``total_auto_v4_bits <= total_auto_v3_bits`` always
(the encoder upgrades a container only when the wide framing pays), and
strictly smaller on this corpus because the replicated datapath engages
``delta-k``/``rice-a``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.eval.experiments import v4_ratio_summary

#: Reduced-scale smoke corpus: one Table II proxy plus the synthetic
#: replicated-datapath workload (see ``repro.eval.experiments.EVAL_EXTRAS``).
SMOKE_NAMES = ("ex5p", "dpath")
SMOKE_CLUSTERS = (1, 2, 3)
SMOKE_SCALE = 0.08
SMOKE_CHANNEL_WIDTH = 8


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path,
                        default=Path("bench_v4_ratio.json"))
    parser.add_argument("--results-dir", type=Path, default=None,
                        help="reuse this eval cache (default: a temp dir)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    if args.results_dir is not None:
        results_dir = args.results_dir
        summary = _summarize(results_dir, args.seed)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            summary = _summarize(Path(tmp), args.seed)

    args.out.write_text(json.dumps(summary, indent=1, sort_keys=True) + "\n")
    print(f"V3 auto total: {summary['total_auto_v3_bits']} bits")
    print(f"V4 auto total: {summary['total_auto_v4_bits']} bits")
    print(f"improvement:   {summary['improvement_bits']} bits "
          f"(ratio {summary['v4_over_v3_ratio']:.4f})")
    print(f"wrote {args.out}")
    if summary["total_auto_v4_bits"] > summary["total_auto_v3_bits"]:
        print("ERROR: VERSION 4 family regressed the corpus total",
              file=sys.stderr)
        return 1
    return 0


def _summarize(results_dir: Path, seed: int) -> dict:
    summary = v4_ratio_summary(
        SMOKE_NAMES, results_dir, SMOKE_CHANNEL_WIDTH,
        clusters=SMOKE_CLUSTERS, scale=SMOKE_SCALE, seed=seed,
    )
    summary["corpus"] = list(SMOKE_NAMES)
    return summary


if __name__ == "__main__":
    sys.exit(main())
