"""E3 — Figure 5: effect of the macro cluster size on the VBS size.

Benchmarks vbsgen at each clustering granularity on the reduced-scale proxy
and reports sizes/ratios; the full-scale series (min/geomean/max + average
ratio, as plotted in the paper) comes from the results cache when present.
"""

import pytest

from repro.bitstream import RawBitstream
from repro.vbs import decode_vbs, encode_flow

CLUSTERS = (1, 2, 3, 4)


@pytest.mark.parametrize("cluster", CLUSTERS)
def test_fig5_cluster_encode(benchmark, bench_flow, bench_config, cluster):
    raw_bits = RawBitstream.size_for(
        bench_flow.params, bench_flow.fabric.width, bench_flow.fabric.height
    )

    vbs = benchmark(
        encode_flow, bench_flow, bench_config, cluster_size=cluster
    )

    _cfg, stats = decode_vbs(vbs)
    benchmark.extra_info["vbs_bits"] = vbs.size_bits
    benchmark.extra_info["ratio"] = round(vbs.size_bits / raw_bits, 4)
    benchmark.extra_info["decode_work"] = stats.router_work
    assert vbs.size_bits < raw_bits


def test_fig5_shape_on_bench_circuit(bench_flow, bench_config):
    """The qualitative Figure 5 claims on the in-bench circuit:
    clustering at size 2 improves on no clustering, and decode work grows
    monotonically with cluster size."""
    sizes = {}
    works = {}
    for c in CLUSTERS:
        vbs = encode_flow(bench_flow, bench_config, cluster_size=c)
        _cfg, stats = decode_vbs(vbs)
        sizes[c] = vbs.size_bits
        works[c] = stats.router_work
    assert sizes[2] < sizes[1], "paper: cluster size 2 beats size 1"
    assert works[CLUSTERS[-1]] > works[1], (
        "paper: coarser clusters need higher computing power to decode"
    )


def test_fig5_fullscale_series(fullscale_results):
    """Full-scale Figure 5 shape: size-2 clustering must improve the average
    ratio; large clusters must not keep improving monotonically."""
    rows = [
        row for row in fullscale_results.values()
        if {"1", "2"} <= set(row["clusters"])
    ]
    if len(rows) < 3:
        pytest.skip("full-scale cluster sweep not cached yet")
    avg1 = sum(r["clusters"]["1"]["ratio"] for r in rows) / len(rows)
    avg2 = sum(r["clusters"]["2"]["ratio"] for r in rows) / len(rows)
    assert avg2 < avg1
