"""A4 — ablation: task load latency, raw fetch vs VBS fetch + decode.

The Figure 2 architecture trades external-memory bandwidth (the VBS is
2-10x smaller to fetch) against decoder compute.  This bench loads the
same task both ways through the reconfiguration controller and compares
cycle budgets under the bus/decoder cost model.
"""

import pytest

from repro.arch import FabricArch
from repro.bitstream import RawBitstream
from repro.runtime import CostParams, ExternalMemory, ReconfigurationController
from repro.vbs import encode_flow


@pytest.fixture(scope="module")
def loaded_images(bench_flow, bench_config):
    vbs = encode_flow(bench_flow, bench_config, cluster_size=1)
    raw = RawBitstream.from_config(bench_config)
    return vbs, raw


def _controller(bench_flow, units=4):
    w, h = bench_flow.fabric.width, bench_flow.fabric.height
    fabric = FabricArch(
        bench_flow.params, w, h,
        {(p.x, p.y): bench_flow.fabric.type_name_at(p.x, p.y)
         for p in bench_flow.fabric.cells()},
    )
    mem = ExternalMemory(bus_bits=32)
    return ReconfigurationController(
        fabric, mem, CostParams(bus_bits=32, parallel_units=units)
    )


def test_load_vbs(benchmark, bench_flow, loaded_images):
    vbs, _raw = loaded_images

    def load():
        ctrl = _controller(bench_flow)
        ctrl.store_vbs("t", vbs)
        return ctrl.load_task("t", (0, 0))

    task = benchmark(load)
    benchmark.extra_info["fetch_cycles"] = task.load_cost.fetch_cycles
    benchmark.extra_info["decode_cycles"] = task.load_cost.decode_cycles
    benchmark.extra_info["total_cycles"] = task.load_cost.total_cycles


def test_load_raw(benchmark, bench_flow, loaded_images):
    _vbs, raw = loaded_images

    def load():
        ctrl = _controller(bench_flow)
        ctrl.store_raw("t", raw)
        return ctrl.load_task("t", (0, 0))

    task = benchmark(load)
    benchmark.extra_info["fetch_cycles"] = task.load_cost.fetch_cycles
    benchmark.extra_info["total_cycles"] = task.load_cost.total_cycles


def test_vbs_fetch_advantage(bench_flow, loaded_images):
    vbs, raw = loaded_images
    ctrl = _controller(bench_flow)
    ctrl.store_vbs("v", vbs)
    ctrl.store_raw("r", raw)
    v_img, v_cycles = ctrl.memory.fetch("v")
    r_img, r_cycles = ctrl.memory.fetch("r")
    assert v_img.size_bits < r_img.size_bits
    assert v_cycles < r_cycles
    # Memory footprint claim: the whole point of the compression.
    assert ctrl.memory.total_bits == v_img.size_bits + r_img.size_bits


def test_migration_cost(benchmark, bench_flow, loaded_images):
    """Migration without the decode cache re-decodes on the fly."""
    vbs, _raw = loaded_images
    ctrl = _controller(bench_flow)
    # Measure the uncached re-decode path: disable both the image-level
    # cache and the cluster-level result memo.
    ctrl.decode_cache = None
    ctrl.decode_memo = None
    ctrl.store_vbs("t", vbs)
    ctrl.load_task("t", (0, 0))
    if ctrl.fabric.width < 2 * ctrl.resident["t"].region.w:
        pytest.skip("fabric too small to migrate side-by-side")

    def migrate():
        region = ctrl.resident["t"].region
        target = (region.w if region.x == 0 else 0, 0)
        return ctrl.migrate_task("t", target)

    task = benchmark(migrate)
    assert task.load_cost.decode_cycles > 0  # re-decoded on the fly


def test_repeated_load_cache_hit(benchmark, bench_flow, loaded_images):
    """The decode cache turns a repeated load into a zero-decode hit."""
    vbs, _raw = loaded_images
    ctrl = _controller(bench_flow)
    ctrl.store_vbs("t", vbs)
    first = ctrl.load_task("t", (0, 0))
    assert not first.load_cost.cache_hit
    assert first.load_cost.decode_cycles > 0

    def reload():
        ctrl.unload_task("t")
        return ctrl.load_task("t", (0, 0))

    task = benchmark(reload)
    assert task.load_cost.cache_hit
    assert task.load_cost.decode_cycles == 0  # decode work ~ 0 on re-load
    stats = ctrl.decode_cache.stats
    assert stats.hits >= 1 and stats.misses == 1
    benchmark.extra_info["first_decode_cycles"] = first.load_cost.decode_cycles
    benchmark.extra_info["hit_decode_cycles"] = task.load_cost.decode_cycles
    benchmark.extra_info["cache_hits"] = stats.hits
    benchmark.extra_info["cache_misses"] = stats.misses


def test_relocated_load_cache_hit(bench_flow, loaded_images):
    """Relocation is position-abstracted: one entry serves every origin."""
    vbs, _raw = loaded_images
    ctrl = _controller(bench_flow)
    ctrl.store_vbs("t", vbs)
    w = vbs.layout.width
    if ctrl.fabric.width < 2 * w:
        pytest.skip("fabric too small for a side-by-side relocation")
    ctrl.load_task("t", (0, 0))
    moved = ctrl.migrate_task("t", (w, 0))
    assert moved.load_cost.cache_hit
    assert moved.load_cost.decode_cycles == 0
    assert ctrl.decode_cache.stats.hits == 1
