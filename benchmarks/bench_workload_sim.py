"""A5 — runtime scale-out: multi-task workload replay through the manager.

Replays seeded load/unload/migrate traces (hot-set reuse, round-robin
churn, adversarial cache-thrashing) over a shared fabric and reports the
decode-cache hit rate and the cost model's cycle budget per mix — the
run-time half of the paper measured as a workload instead of a single
load.  The trace and images are deterministic, so ``extra_info`` numbers
are comparable across runs and machines.
"""

import pytest

from repro.arch import FabricArch
from repro.runtime import (
    ExternalMemory,
    FabricManager,
    ReconfigurationController,
    WorkloadSimulator,
    generate_trace,
)
from repro.vbs import encode_flow

TRACE_LENGTH = 60


@pytest.fixture(scope="module")
def workload_images(bench_flow, bench_config):
    """Two container variants of the bench circuit (distinct digests)."""
    return [
        ("plain", encode_flow(bench_flow, bench_config, cluster_size=1)),
        ("autoc", encode_flow(bench_flow, bench_config, cluster_size=1,
                              codecs="auto")),
    ]


def _manager(bench_flow, images, capacity=16):
    w, h = bench_flow.fabric.width, bench_flow.fabric.height
    fabric = FabricArch(
        bench_flow.params, w + w // 2 + 1, h + 1,
        {(x, y): "clb"
         for x in range(w + w // 2 + 1) for y in range(h + 1)},
    )
    ctrl = ReconfigurationController(
        fabric, ExternalMemory(), cache_capacity=capacity
    )
    for name, vbs in images:
        ctrl.store_vbs(name, vbs)
    return FabricManager(ctrl)


@pytest.mark.parametrize("kind", ["hot-set", "round-robin", "adversarial"])
def test_workload_replay(benchmark, bench_flow, workload_images, kind):
    names = [name for name, _v in workload_images]
    # Capacity 1 under the adversarial mix forces the LRU worst case.
    capacity = 1 if kind == "adversarial" else 16
    trace = generate_trace(kind, names, TRACE_LENGTH, seed=1)

    def replay():
        mgr = _manager(bench_flow, workload_images, capacity=capacity)
        return WorkloadSimulator(mgr).run(trace)

    report = benchmark(replay)
    benchmark.extra_info["hit_rate"] = report["cache"]["hit_rate"]
    benchmark.extra_info["total_cycles"] = report["cycles"]["total"]
    benchmark.extra_info["bytes_decoded"] = report["bytes_decoded"]
    benchmark.extra_info["loads"] = report["events"]["loads"]
