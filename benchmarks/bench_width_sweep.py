"""A3 — ablation: channel width vs compression.

The paper normalizes every circuit to W = 20; this sweep shows how that
choice moves the result: wider channels inflate the raw frame (Eq. 1 is
linear in W) while the VBS pays only ceil(log2)-growth per endpoint, so the
compression factor improves with W.
"""

import pytest

from repro.bitstream import RawBitstream, expand_routing
from repro.eval.experiments import flow_for
from repro.vbs import encode_flow

WIDTHS = (10, 20, 28)


@pytest.fixture(scope="module")
def flows_by_width():
    flows = {}
    for w in WIDTHS:
        flow = flow_for("ex5p", channel_width=w, scale=0.1, seed=2)
        config = expand_routing(
            flow.design, flow.placement, flow.routing, flow.rrg
        )
        flows[w] = (flow, config)
    return flows


@pytest.mark.parametrize("width", WIDTHS)
def test_width_sweep_encode(benchmark, flows_by_width, width):
    flow, config = flows_by_width[width]
    raw_bits = RawBitstream.size_for(
        flow.params, flow.fabric.width, flow.fabric.height
    )

    vbs = benchmark(encode_flow, flow, config, cluster_size=1)

    benchmark.extra_info["ratio"] = round(vbs.size_bits / raw_bits, 4)
    benchmark.extra_info["raw_bits"] = raw_bits
    assert vbs.size_bits < raw_bits


def test_wider_channels_compress_better(flows_by_width):
    ratios = {}
    for w, (flow, config) in flows_by_width.items():
        raw_bits = RawBitstream.size_for(
            flow.params, flow.fabric.width, flow.fabric.height
        )
        vbs = encode_flow(flow, config, cluster_size=1)
        ratios[w] = vbs.size_bits / raw_bits
    assert ratios[WIDTHS[-1]] < ratios[WIDTHS[0]]
