"""Tile-pattern RRG memory artifact (the CI rrg-smoke job).

Measures the retained memory of the explicit CSR :class:`RoutingGraph`
against the :class:`TilePatternRoutingGraph` on a ladder of square
fabrics, verifies the two are adjacency-identical at every size, and
writes the per-size reductions to a JSON artifact::

    PYTHONPATH=src python benchmarks/bench_rrg_compress.py --out rrg-smoke.json

The gate: the compressed graph must retain at least ``--min-reduction``
(default 4) times less memory than the explicit CSR on the largest
fabric measured — the whole point of the pattern representation is that
its footprint is O(tile classes), not O(nodes + edges), so a reduction
that small means per-node state crept back in.

Also reports the router-construction footprint on the largest fabric:
:class:`PathFinderRouter` must allocate O(1) at construction (sparse
dicts), not copies of the graph.
"""

from __future__ import annotations

import argparse
import json
import sys
import tracemalloc
from pathlib import Path

from repro.arch.fabric import FabricArch
from repro.arch.params import ArchParams
from repro.arch.rrg import RoutingGraph, TilePatternRoutingGraph
from repro.cad.route import PathFinderRouter

#: Square fabric edge lengths measured (logic + ring).  The paper's
#: normalized experiments run at W=20, so the ladder does too.
SIZES = (16, 32, 64)
CHANNEL_WIDTH = 20


def _retained(build) -> "tuple[object, int]":
    """Build through ``build()`` and report bytes still allocated after."""
    tracemalloc.start()
    tracemalloc.clear_traces()
    obj = build()
    current, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return obj, current


def _verify_adjacency(explicit: RoutingGraph,
                      compressed: TilePatternRoutingGraph,
                      sample_stride: int) -> bool:
    """Node-for-node neighbor equality (values AND order)."""
    for node in range(0, explicit.num_nodes, sample_stride):
        if explicit.neighbor_list(node) != compressed.neighbor_list(node):
            return False
    return explicit.num_edges == compressed.num_edges


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_rrg.json"))
    parser.add_argument("--min-reduction", type=float, default=4.0,
                        help="gate on the largest fabric's memory reduction")
    parser.add_argument("--sizes", type=int, nargs="*", default=list(SIZES))
    args = parser.parse_args(argv)

    params = ArchParams(channel_width=CHANNEL_WIDTH)
    summary: dict = {"channel_width": CHANNEL_WIDTH, "fabrics": {}}
    reduction = 0.0

    for n in sorted(args.sizes):
        fabric = FabricArch(params, n, n, {})
        explicit, explicit_bytes = _retained(
            lambda: RoutingGraph(fabric))
        compressed, compressed_bytes = _retained(
            lambda: TilePatternRoutingGraph(fabric))
        # The smallest fabric is verified exhaustively; larger ones are
        # sampled — the pattern table is size-independent, so a per-node
        # divergence at scale would already show at the dense check.
        stride = 1 if n == min(args.sizes) else 97
        if not _verify_adjacency(explicit, compressed, stride):
            print(f"ERROR: {n}x{n}: adjacency mismatch", file=sys.stderr)
            return 1
        reduction = explicit_bytes / max(1, compressed_bytes)
        summary["fabrics"][f"{n}x{n}"] = {
            "nodes": explicit.num_nodes,
            "edges": explicit.num_edges,
            "explicit_bytes": explicit_bytes,
            "compressed_bytes": compressed_bytes,
            "reduction": round(reduction, 2),
        }
        print(f"{n:3d}x{n:<3d} {explicit.num_nodes:9d} nodes   "
              f"explicit {explicit_bytes / 1e6:8.2f} MB   "
              f"compressed {compressed_bytes / 1e3:8.1f} kB   "
              f"{reduction:7.1f}x")

    # Router construction on the largest fabric must be O(1): no CSR
    # copies, no per-node arrays.
    router, router_bytes = _retained(
        lambda: PathFinderRouter(compressed))
    summary["router_construct_bytes"] = router_bytes
    print(f"router construction over the largest graph retains "
          f"{router_bytes} bytes")

    summary["largest_reduction"] = round(reduction, 2)
    args.out.write_text(json.dumps(summary, indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if reduction < args.min_reduction:
        print(f"ERROR: memory reduction {reduction:.1f}x on the largest "
              f"fabric is below the {args.min_reduction}x gate",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
