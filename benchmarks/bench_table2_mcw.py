"""E1 — Table II: minimum channel width of the benchmark proxies.

Benchmarks the MCW binary search on a reduced-scale proxy.  Absolute MCW
values differ from the paper's VPR numbers (our switch box is the stricter
disjoint pattern; see DESIGN.md §2.3) but the search procedure and the
relative congestion ordering are the reproduced artifacts.
"""

import pytest

from repro.cad import find_mcw
from repro.eval.experiments import flow_for
from repro.eval.mcnc import circuit


@pytest.fixture(scope="module")
def mcw_flow():
    return flow_for("ex5p", channel_width=20, scale=0.12, seed=1)


def test_table2_mcw_search(benchmark, mcw_flow):
    def search():
        return find_mcw(
            mcw_flow.design,
            mcw_flow.fabric,
            placement=mcw_flow.placement,
            w_max=32,
            max_iterations=12,
        )

    result = benchmark.pedantic(search, rounds=1, iterations=1)
    assert 2 <= result.mcw <= 32
    benchmark.extra_info["mcw"] = result.mcw
    benchmark.extra_info["widths_probed"] = sorted(result.attempts)


def test_table2_row_data():
    """The paper-side columns are pinned by the data module."""
    row = circuit("ex5p")
    assert (row.size, row.mcw_paper, row.lbs) == (28, 13, 740)


def test_table2_congestion_ordering_proxy():
    """Proxy calibration: paper-congested circuits get lower locality, so
    their proxies remain relatively harder to route."""
    hard = circuit("ex1010")   # MCW 16
    easy = circuit("des")      # MCW 8
    assert hard.locality < easy.locality
