"""E0 — Section II numerics: Eq. (1), the I/O code width, break-even.

Regenerates the paper's worked example (W = 5, L = 7): Nraw = 284 bits per
macro, M = 5 bits per connection endpoint, and a 28-connection break-even,
then benchmarks the macro-model construction those numbers rest on.
"""

import pytest

from repro.arch import ArchParams
from repro.arch.macro import ClusterModel


def test_paper_worked_example_numbers():
    p = ArchParams(channel_width=5)
    assert p.nraw == 284
    assert p.io_code_bits(1) == 5
    assert p.connection_breakeven(1) == 28


def bench_rows():
    """The Section II quantities across channel widths (printed by E0)."""
    rows = []
    for w in (5, 10, 20, 28):
        p = ArchParams(channel_width=w)
        rows.append(
            (w, p.nraw, p.io_code_bits(1), p.connection_breakeven(1))
        )
    return rows


def test_eq1_scaling_table(benchmark):
    rows = benchmark(bench_rows)
    by_w = {r[0]: r for r in rows}
    assert by_w[5][1:] == (284, 5, 28)
    assert by_w[20][1] == 1004
    benchmark.extra_info["rows (W, Nraw, M, breakeven)"] = rows


@pytest.mark.parametrize("cluster", [1, 2, 4])
def test_cluster_model_construction(benchmark, cluster):
    p = ArchParams(channel_width=20)

    def build():
        return ClusterModel(p, cluster)

    model = benchmark(build)
    assert model.num_switches == cluster * cluster * p.routing_bits
    benchmark.extra_info["segments"] = model.num_segments
    benchmark.extra_info["io_count"] = model.io_count
