"""A5 — ablation: Table I coding vs the future-work compact logic coding.

Section V lists "smarter coding of the VBS to gain in runtime efficiency
and in size" as future work; the library implements one such coding: a
presence flag per member macro replacing the unconditional ``c^2 * NLB``
logic field.  This bench quantifies the gain per cluster size, which grows
with ``c`` because coarse clusters increasingly cover logic-free fabric.
"""

import pytest

from repro.vbs import VirtualBitstream, decode_vbs, encode_flow

CLUSTERS = (1, 2, 4)


@pytest.mark.parametrize("cluster", CLUSTERS)
def test_compact_encode(benchmark, bench_flow, bench_config, cluster):
    vbs = benchmark(
        encode_flow, bench_flow, bench_config, cluster_size=cluster,
        compact_logic=True,
    )
    plain = encode_flow(bench_flow, bench_config, cluster_size=cluster)
    benchmark.extra_info["table1_bits"] = plain.size_bits
    benchmark.extra_info["compact_bits"] = vbs.size_bits
    benchmark.extra_info["gain"] = round(plain.size_bits / vbs.size_bits, 3)
    assert vbs.size_bits <= plain.size_bits


def test_compact_roundtrip_and_gain_grows(bench_flow, bench_config):
    gains = []
    for c in CLUSTERS:
        plain = encode_flow(bench_flow, bench_config, cluster_size=c)
        compact = encode_flow(
            bench_flow, bench_config, cluster_size=c, compact_logic=True
        )
        # The container stays parseable and decodes to the same content.
        a, _ = decode_vbs(VirtualBitstream.from_bits(plain.to_bits()))
        b, _ = decode_vbs(VirtualBitstream.from_bits(compact.to_bits()))
        assert a.content_equal(b)
        gains.append(plain.size_bits / compact.size_bits)
    assert gains[-1] > gains[0], (
        "compact coding should pay off most at coarse clusters"
    )
