"""A2 — ablation: run-time decode effort vs cluster size and parallelism.

Quantifies two Section II-C / IV-B claims: the de-virtualization is
"easily parallelized to process multiple macros at once", and coarser
clusters need "higher computing power to decode".
"""

import pytest

from repro.runtime import CostParams, decode_cost
from repro.vbs import decode_vbs, encode_flow


@pytest.fixture(scope="module")
def decode_stats_by_cluster(bench_flow, bench_config):
    stats = {}
    for c in (1, 2, 3, 4):
        vbs = encode_flow(bench_flow, bench_config, cluster_size=c)
        _cfg, s = decode_vbs(vbs)
        stats[c] = s
    return stats


@pytest.mark.parametrize("cluster", [1, 2, 4])
def test_decode_time(benchmark, bench_flow, bench_config, cluster):
    vbs = encode_flow(bench_flow, bench_config, cluster_size=cluster)
    bits = vbs.to_bits()

    _cfg, stats = benchmark(decode_vbs, bits)

    benchmark.extra_info["router_work"] = stats.router_work
    benchmark.extra_info["max_cluster_work"] = stats.max_cluster_work


def test_decode_work_monotone_in_cluster(decode_stats_by_cluster):
    works = [decode_stats_by_cluster[c].router_work for c in (1, 2, 3, 4)]
    assert works[-1] > works[0]


@pytest.mark.parametrize("units", [1, 2, 4, 8, 16])
def test_parallel_decoder_speedup(benchmark, decode_stats_by_cluster, units):
    stats = decode_stats_by_cluster[1]

    cycles, loads = benchmark(
        decode_cost, stats, CostParams(parallel_units=units)
    )

    benchmark.extra_info["decode_cycles"] = cycles
    assert cycles >= stats.max_cluster_work
    if units > 1:
        seq, _ = decode_cost(stats, CostParams(parallel_units=1))
        assert cycles < seq


def test_speedup_saturates_at_critical_path(decode_stats_by_cluster):
    stats = decode_stats_by_cluster[2]
    seq, _ = decode_cost(stats, CostParams(parallel_units=1))
    wide, _ = decode_cost(stats, CostParams(parallel_units=10_000))
    assert wide >= stats.max_cluster_work
    assert wide <= seq
