"""A6 — open-loop workload engine: latency percentiles under arrivals.

Replays seeded Zipf-mix traces with Poisson arrival timestamps through
the workload simulator's virtual clock and reports the latency
percentiles, queue depths and server utilization the open-loop engine
adds — the numbers a production-scale runtime manager is sized by.
Everything is seeded, so ``extra_info`` values are comparable across
runs and machines.

Also runnable as a script (the CI bench-smoke artifact)::

    python benchmarks/bench_openloop.py --out openloop-smoke.json

which runs one short open-loop scenario, validates that the report
carries the percentile/queue-depth schema, and writes the JSON.
"""

from __future__ import annotations

import argparse
import json
import sys


def _smoke_scenario(length: int = 14, seed: int = 1) -> dict:
    from repro.runtime.workload import run_scenario

    return run_scenario(
        kind="zipf",
        n_tasks=2,
        length=length,
        seed=seed,
        arrivals="poisson",
        mean_interarrival=1500,
    )


# -- pytest-benchmark harness ----------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - benchmarks always run under pytest
    pytest = None

if pytest is not None:
    from repro.arch import FabricArch
    from repro.runtime import (
        ExternalMemory,
        FabricManager,
        ReconfigurationController,
        WorkloadSimulator,
        generate_trace,
    )
    from repro.vbs import encode_flow

    TRACE_LENGTH = 60

    @pytest.fixture(scope="module")
    def openloop_images(bench_flow, bench_config):
        """Two container variants of the bench circuit (distinct digests)."""
        return [
            ("plain", encode_flow(bench_flow, bench_config, cluster_size=1)),
            ("autoc", encode_flow(bench_flow, bench_config, cluster_size=1,
                                  codecs="auto")),
        ]

    def _manager(bench_flow, images):
        w, h = bench_flow.fabric.width, bench_flow.fabric.height
        fabric = FabricArch(
            bench_flow.params, w + w // 2 + 1, h + 1,
            {(x, y): "clb"
             for x in range(w + w // 2 + 1) for y in range(h + 1)},
        )
        ctrl = ReconfigurationController(fabric, ExternalMemory())
        for name, vbs in images:
            ctrl.store_vbs(name, vbs)
        return FabricManager(ctrl)

    @pytest.mark.parametrize("mean_interarrival", [200, 5000])
    def test_openloop_zipf_replay(benchmark, bench_flow, openloop_images,
                                  mean_interarrival):
        """Saturated (200-cycle gaps) vs relaxed (5000) arrival pressure."""
        names = [name for name, _v in openloop_images]
        trace = generate_trace(
            "zipf", names, TRACE_LENGTH, seed=1,
            arrivals="poisson", mean_interarrival=mean_interarrival,
        )

        def replay():
            mgr = _manager(bench_flow, openloop_images)
            return WorkloadSimulator(mgr).run(trace)

        report = benchmark(replay)
        benchmark.extra_info["p50_latency"] = report["latency"]["p50"]
        benchmark.extra_info["p99_latency"] = report["latency"]["p99"]
        benchmark.extra_info["max_queue_depth"] = report["queue"]["max_depth"]
        benchmark.extra_info["utilization"] = report["clock"]["utilization"]


# -- CI smoke artifact ------------------------------------------------------------


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Open-loop workload smoke artifact."
    )
    parser.add_argument("--out", default="openloop-smoke.json",
                        help="output JSON path")
    parser.add_argument("--length", type=int, default=14)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    report = _smoke_scenario(length=args.length, seed=args.seed)
    latency = report.get("latency", {})
    for field in ("p50", "p95", "p99"):
        if field not in latency:
            print(f"missing latency percentile {field!r} in the report",
                  file=sys.stderr)
            return 1
    if "max_depth" not in report.get("queue", {}):
        print("missing queue depth in the report", file=sys.stderr)
        return 1
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"open-loop zipf trace: p50 {latency['p50']} / "
          f"p95 {latency['p95']} / p99 {latency['p99']} cycles, "
          f"max queue depth {report['queue']['max_depth']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
