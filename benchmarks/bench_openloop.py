"""A6 — open-loop workload engine: latency percentiles under arrivals.

Replays seeded Zipf-mix traces with Poisson arrival timestamps through
the workload simulator's virtual clock and reports the latency
percentiles, queue depths and server utilization the open-loop engine
adds — the numbers a production-scale runtime manager is sized by.
Everything is seeded, so ``extra_info`` values are comparable across
runs and machines.

Also runnable as a script (the CI bench-smoke artifact)::

    python benchmarks/bench_openloop.py --out openloop-smoke.json

which runs one short open-loop scenario, validates that the report
carries the percentile/queue-depth schema, and writes the JSON.
"""

from __future__ import annotations

import argparse
import json
import sys


def _smoke_scenario(
    length: int = 14,
    seed: int = 1,
    shards: int = 1,
    router: str = "hash",
    servers: int = 1,
    policy: "str | None" = None,
) -> dict:
    from repro.runtime.workload import run_scenario

    return run_scenario(
        kind="zipf",
        n_tasks=2,
        length=length,
        seed=seed,
        arrivals="poisson",
        mean_interarrival=1500,
        shards=shards,
        router=router,
        servers=servers,
        policy=policy,
    )


# -- pytest-benchmark harness ----------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - benchmarks always run under pytest
    pytest = None

if pytest is not None:
    from repro.arch import FabricArch
    from repro.runtime import (
        ExternalMemory,
        FabricManager,
        ReconfigurationController,
        WorkloadSimulator,
        generate_trace,
    )
    from repro.vbs import encode_flow

    TRACE_LENGTH = 60

    @pytest.fixture(scope="module")
    def openloop_images(bench_flow, bench_config):
        """Two container variants of the bench circuit (distinct digests)."""
        return [
            ("plain", encode_flow(bench_flow, bench_config, cluster_size=1)),
            ("autoc", encode_flow(bench_flow, bench_config, cluster_size=1,
                                  codecs="auto")),
        ]

    def _manager(bench_flow, images):
        w, h = bench_flow.fabric.width, bench_flow.fabric.height
        fabric = FabricArch(
            bench_flow.params, w + w // 2 + 1, h + 1,
            {(x, y): "clb"
             for x in range(w + w // 2 + 1) for y in range(h + 1)},
        )
        ctrl = ReconfigurationController(fabric, ExternalMemory())
        for name, vbs in images:
            ctrl.store_vbs(name, vbs)
        return FabricManager(ctrl)

    @pytest.mark.parametrize("mean_interarrival", [200, 5000])
    def test_openloop_zipf_replay(benchmark, bench_flow, openloop_images,
                                  mean_interarrival):
        """Saturated (200-cycle gaps) vs relaxed (5000) arrival pressure."""
        names = [name for name, _v in openloop_images]
        trace = generate_trace(
            "zipf", names, TRACE_LENGTH, seed=1,
            arrivals="poisson", mean_interarrival=mean_interarrival,
        )

        def replay():
            mgr = _manager(bench_flow, openloop_images)
            return WorkloadSimulator(mgr).run(trace)

        report = benchmark(replay)
        benchmark.extra_info["p50_latency"] = report["latency"]["p50"]
        benchmark.extra_info["p99_latency"] = report["latency"]["p99"]
        benchmark.extra_info["max_queue_depth"] = report["queue"]["max_depth"]
        benchmark.extra_info["utilization"] = report["clock"]["utilization"]

    @pytest.mark.parametrize("router", ["hash", "load"])
    def test_openloop_fleet_replay(benchmark, bench_flow, openloop_images,
                                   router):
        """Four-shard fleet replay of a saturating trace (k servers)."""
        from repro.runtime import FleetManager

        names = [name for name, _v in openloop_images]
        trace = generate_trace(
            "zipf", names, TRACE_LENGTH, seed=1,
            arrivals="poisson", mean_interarrival=200,
        )

        def _fleet():
            w, h = bench_flow.fabric.width, bench_flow.fabric.height
            memory = ExternalMemory()
            managers = []
            for _shard in range(4):
                fabric = FabricArch(
                    bench_flow.params, w + w // 2 + 1, h + 1,
                    {(x, y): "clb"
                     for x in range(w + w // 2 + 1) for y in range(h + 1)},
                )
                managers.append(FabricManager(
                    ReconfigurationController(fabric, memory)
                ))
            for name, vbs in openloop_images:
                managers[0].controller.store_vbs(name, vbs)
            return FleetManager(managers, router=router)

        def replay():
            return WorkloadSimulator(fleet=_fleet()).run(trace)

        report = benchmark(replay)
        benchmark.extra_info["p99_latency"] = report["latency"]["p99"]
        benchmark.extra_info["fleet_utilization"] = (
            report["clock"]["utilization"]
        )


# -- CI smoke artifact ------------------------------------------------------------


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Open-loop workload smoke artifact."
    )
    parser.add_argument("--out", default="openloop-smoke.json",
                        help="output JSON path")
    parser.add_argument("--length", type=int, default=14)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--shards", type=int, default=1,
                        help="fabric shards (a >1 count also validates "
                             "the fleet/per-shard report schema)")
    parser.add_argument("--router", default="hash",
                        help="fleet placement router (hash or load)")
    parser.add_argument("--servers", type=int, default=1,
                        help="parallel reconfiguration servers on the "
                             "open-loop clock")
    parser.add_argument("--policy", default=None,
                        help="admission policy (none, drop-cold, "
                             "defer-cold or priority; single-fabric "
                             "runs only)")
    args = parser.parse_args(argv)

    report = _smoke_scenario(
        length=args.length, seed=args.seed,
        shards=args.shards, router=args.router,
        servers=args.servers, policy=args.policy,
    )
    latency = report.get("latency") or {}
    for field in ("p50", "p95", "p99"):
        if field not in latency:
            print(f"missing latency percentile {field!r} in the report",
                  file=sys.stderr)
            return 1
    if "max_depth" not in report.get("queue", {}):
        print("missing queue depth in the report", file=sys.stderr)
        return 1
    if args.servers > 1 and args.shards == 1 \
            and report.get("clock", {}).get("servers") != args.servers:
        print("missing k-server tag in the clock section",
              file=sys.stderr)
        return 1
    if args.policy not in (None, "none") and "admission" not in report:
        print("missing admission section in the report", file=sys.stderr)
        return 1
    if args.shards > 1:
        fleet = report.get("fleet", {})
        shards = report.get("shards", [])
        if fleet.get("shards") != args.shards or len(shards) != args.shards:
            print("missing fleet/per-shard sections in the report",
                  file=sys.stderr)
            return 1
        for shard in shards:
            if "latency" not in shard or "clock" not in shard:
                print(f"shard {shard.get('shard')} is missing its "
                      f"latency/clock sections", file=sys.stderr)
                return 1
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"open-loop zipf trace: p50 {latency['p50']} / "
          f"p95 {latency['p95']} / p99 {latency['p99']} cycles, "
          f"max queue depth {report['queue']['max_depth']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
