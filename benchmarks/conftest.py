"""Shared fixtures for the benchmark harness.

Benchmarks default to *reduced-scale* proxies of the Table II circuits so
``pytest benchmarks/ --benchmark-only`` completes in minutes; the full-scale
reproduction is ``python -m repro.eval.run_all`` (see DESIGN.md §3 and
EXPERIMENTS.md).  When a full-scale results cache exists under ``results/``
the figure benches also report those numbers in ``extra_info``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bitstream import expand_routing
from repro.eval.experiments import flow_for

#: Scale used for in-benchmark CAD runs (shape-preserving reduction).
BENCH_SCALE = 0.15
BENCH_CIRCUIT = "tseng"


@pytest.fixture(scope="session")
def bench_flow():
    """A routed reduced-scale Table II proxy at the paper's W = 20."""
    return flow_for(BENCH_CIRCUIT, channel_width=20, scale=BENCH_SCALE, seed=1)


@pytest.fixture(scope="session")
def bench_config(bench_flow):
    return expand_routing(
        bench_flow.design, bench_flow.placement, bench_flow.routing,
        bench_flow.rrg,
    )


@pytest.fixture(scope="session")
def fullscale_results() -> dict:
    """Full-scale cached rows from results/ (empty when not yet generated)."""
    out = {}
    results = Path(__file__).resolve().parent.parent / "results"
    if results.is_dir():
        for path in results.glob("*_W20_s1.json"):
            try:
                row = json.loads(path.read_text())
            except json.JSONDecodeError:
                continue
            if "name" in row:
                out[row["name"]] = row
    return out
