#!/usr/bin/env python3
"""Clustering study: Figure 5 of the paper on one circuit.

Sweeps the macro-cluster size of the Virtual Bit-Stream coding on a single
Table II proxy circuit and prints size, compression ratio, decode effort,
and raw-fallback counts per granularity — the trade-off at the heart of
Section IV-B: coarser clusters pool routing abstraction (fewer, wider
connection entries) at the price of run-time decode work.

Run:  python examples/clustering_study.py [circuit] [scale]
      python examples/clustering_study.py tseng 0.25
"""

import sys

from repro.bitstream import RawBitstream, expand_routing
from repro.eval import circuit, format_table
from repro.eval.experiments import flow_for
from repro.vbs import decode_vbs, encode_flow


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ex5p"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2
    bench = circuit(name)
    print(f"circuit {name}: Table II size={bench.size}, "
          f"MCW(paper)={bench.mcw_paper}, LBs={bench.lbs}; "
          f"running proxy at scale {scale:g}")

    flow = flow_for(name, channel_width=20, scale=scale, seed=1)
    print(flow.summary())
    config = expand_routing(flow.design, flow.placement, flow.routing,
                            flow.rrg)
    raw_bits = RawBitstream.size_for(flow.params, flow.fabric.width,
                                     flow.fabric.height)

    rows = []
    for c in (1, 2, 3, 4, 5, 6, 8):
        vbs = encode_flow(flow, config, cluster_size=c)
        _cfg, stats = decode_vbs(vbs)
        rows.append([
            c,
            f"{vbs.size_bits:,}",
            f"{100 * vbs.size_bits / raw_bits:.1f}%",
            vbs.stats.pairs_total,
            vbs.stats.clusters_raw,
            f"{stats.router_work:,}",
            f"{stats.max_cluster_work:,}",
        ])

    print()
    print(f"raw bit-stream: {raw_bits:,} bits")
    print(format_table(
        ["cluster", "VBS bits", "ratio", "pairs", "raw-fallbacks",
         "decode work", "max/cluster"],
        rows,
    ))
    print()
    print("expected shape (paper, Fig. 5): a clear gain from cluster size 1")
    print("to 2, diminishing or negative returns beyond, while decode work")
    print("keeps growing — 'at the cost of a more complex decoding step'.")


if __name__ == "__main__":
    main()
