#!/usr/bin/env python3
"""Quickstart: a circuit through the whole Virtual Bit-Stream toolflow.

Builds a small sequential circuit, runs the offline CAD flow (pack, place,
route), expands it to a configuration, generates the raw bitstream and the
Virtual Bit-Stream, decodes the VBS back, and proves the decoded
configuration still computes the original circuit.

Run:  python examples/quickstart.py
"""

from repro import (
    ArchParams,
    CircuitSpec,
    RawBitstream,
    decode_vbs,
    encode_flow,
    expand_routing,
    generate_circuit,
    run_flow,
    verify_connectivity,
    verify_functional,
)


def main() -> None:
    # 1. A workload: 80 6-LUTs, 12 of them registered (LUT + FF blocks).
    netlist = generate_circuit(
        CircuitSpec("quickstart", n_luts=80, n_inputs=12, n_outputs=8,
                    n_latches=12)
    )
    print(f"netlist:   {netlist!r}")

    # 2. The paper's island-style fabric; W = 8 keeps this demo quick
    #    (the paper's evaluation normalizes to W = 20).
    params = ArchParams(channel_width=8)
    flow = run_flow(netlist, params, seed=7)
    print(f"flow:      {flow.summary()}")

    # 3. Junction-level expansion and the raw (uncompressed) baseline.
    config = expand_routing(flow.design, flow.placement, flow.routing,
                            flow.rrg)
    raw = RawBitstream.from_config(config)
    print(f"raw:       {raw!r}")

    # 4. vbsgen: Table I coding at the finest (single-macro) grain.
    vbs = encode_flow(flow, config, cluster_size=1)
    print(f"vbs:       {vbs!r}")
    print(f"           {vbs.stats.clusters_listed} clusters listed, "
          f"{vbs.stats.clusters_raw} raw fallbacks, "
          f"{vbs.stats.pairs_total} connection pairs")

    # 5. Run-time de-virtualization (what the reconfiguration controller
    #    executes) and end-to-end verification.
    decoded, stats = decode_vbs(vbs.to_bits())
    print(f"decode:    {stats.connections_routed} connections routed with "
          f"{stats.router_work} BFS steps")

    verify_connectivity(flow.design, flow.placement, decoded, flow.fabric)
    steps = verify_functional(netlist, flow.design, flow.placement, decoded,
                              flow.fabric, num_vectors=24)
    print(f"verified:  decoded fabric matches the netlist on {steps} "
          f"random vectors")
    factor = raw.size_bits / vbs.size_bits
    print(f"result:    {raw.size_bits:,} raw bits -> {vbs.size_bits:,} VBS "
          f"bits ({factor:.2f}x compression)")


if __name__ == "__main__":
    main()
