#!/usr/bin/env python3
"""BLIF front-end demo: a hand-written circuit through vbsgen.

Users with real MCNC BLIF files can feed them through the same API; this
example inlines a 4-bit ripple-carry adder in BLIF, maps it to 6-LUTs,
runs the flow, and checks the decoded configuration adds correctly.

Run:  python examples/blif_flow.py
"""

from repro import (
    ArchParams,
    decode_vbs,
    encode_flow,
    expand_routing,
    parse_blif,
    run_flow,
)
from repro.fabric import extract_circuit

ADDER4 = """
.model adder4
.inputs a0 a1 a2 a3 b0 b1 b2 b3
.outputs s0 s1 s2 s3 cout
.names a0 b0 s0
10 1
01 1
.names a0 b0 c1
11 1
.names a1 b1 c1 s1
100 1
010 1
001 1
111 1
.names a1 b1 c1 c2
11- 1
1-1 1
-11 1
.names a2 b2 c2 s2
100 1
010 1
001 1
111 1
.names a2 b2 c2 c3
11- 1
1-1 1
-11 1
.names a3 b3 c3 s3
100 1
010 1
001 1
111 1
.names a3 b3 c3 cout
11- 1
1-1 1
-11 1
.end
"""


def main() -> None:
    netlist = parse_blif(ADDER4)
    print(f"parsed:  {netlist!r}")

    flow = run_flow(netlist, ArchParams(channel_width=8), seed=5)
    print(f"flow:    {flow.summary()}")

    config = expand_routing(flow.design, flow.placement, flow.routing,
                            flow.rrg)
    vbs = encode_flow(flow, config, cluster_size=1)
    print(f"vbs:     {vbs!r}")

    decoded, _stats = decode_vbs(vbs.to_bits())
    fabric_circuit = extract_circuit(decoded, flow.fabric)
    fabric_circuit.check_no_shorts()

    # Exercise the configured fabric as an actual adder.
    site = {}
    for pad in flow.design.pads:
        x, y, sub = flow.placement.site_of(pad.name)
        site[pad.net] = ((x, y), sub)

    print("checking 256 input combinations on the decoded fabric...")
    for a in range(16):
        for b in range(16):
            stimulus = {}
            for i in range(4):
                stimulus[site[f"a{i}"]] = (a >> i) & 1
                stimulus[site[f"b{i}"]] = (b >> i) & 1
            out = fabric_circuit.simulate([stimulus])[0]
            total = sum(out[site[f"s{i}"]] << i for i in range(4))
            total |= out[site["cout"]] << 4
            assert total == a + b, f"{a}+{b} gave {total}"
    print("the relocatable bitstream adds: 4-bit adder verified exhaustively")


if __name__ == "__main__":
    main()
