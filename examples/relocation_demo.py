#!/usr/bin/env python3
"""Run-time management demo: multi-task loading, relocation, migration.

Three hardware tasks share one fabric.  Each task exists as a single
position-abstracted Virtual Bit-Stream in external memory; the
reconfiguration controller decodes it wherever the fabric manager finds
room (Section II-C / Figure 2 of the paper).  When a task unloads, the
manager defragments by migrating a resident task — re-running the
de-virtualization at the new origin, never storing a second bitstream.

Run:  python examples/relocation_demo.py
"""

from repro import (
    ArchParams,
    CircuitSpec,
    ExternalMemory,
    FabricArch,
    FabricManager,
    ReconfigurationController,
    encode_flow,
    expand_routing,
    generate_circuit,
    run_flow,
)


def make_task(name: str, n_luts: int, seed: int, params: ArchParams):
    netlist = generate_circuit(
        CircuitSpec(name, n_luts=n_luts, n_inputs=8, n_outputs=6)
    )
    flow = run_flow(netlist, params, seed=seed)
    config = expand_routing(flow.design, flow.placement, flow.routing,
                            flow.rrg)
    return encode_flow(flow, config, cluster_size=2)


def show(controller: ReconfigurationController) -> None:
    print(f"  fabric {controller.fabric.width}x{controller.fabric.height}, "
          f"utilization {controller.utilization():.0%}")
    for task in controller.resident.values():
        r = task.region
        print(f"    {task.name:<8} @ ({r.x:>2},{r.y:>2}) size {r.w}x{r.h} "
              f"(load: {task.load_cost.total_cycles:,} cycles)")


def main() -> None:
    params = ArchParams(channel_width=8)

    print("building three tasks (offline vbsgen)...")
    tasks = {
        "fir": make_task("fir", 24, seed=1, params=params),
        "fft": make_task("fft", 40, seed=2, params=params),
        "aes": make_task("aes", 32, seed=3, params=params),
    }

    # A 24x12 hosting fabric; every cell accepts relocated task content.
    fabric = FabricArch(params, 24, 12,
                        {(x, y): "clb" for x in range(24) for y in range(12)})
    controller = ReconfigurationController(fabric, ExternalMemory(bus_bits=32))
    manager = FabricManager(controller)

    for name, vbs in tasks.items():
        image = controller.store_vbs(name, vbs)
        print(f"stored {name}: {image.size_bits:,} bits in external memory "
              f"({vbs.compression_ratio():.0%} of raw)")

    print("\nplacing all three tasks:")
    for name in tasks:
        task = manager.place_task(name)
        r = task.region
        print(f"  {name} decoded at ({r.x},{r.y}) in "
              f"{task.load_cost.total_cycles:,} cycles "
              f"({task.load_cost.decode_cycles:,} decode)")
    show(controller)

    print("\nunloading 'fir' and defragmenting:")
    controller.unload_task("fir")
    moved = manager.defragment()
    print(f"  {moved} task(s) migrated (VBS re-decoded on the fly)")
    show(controller)

    print("\nreloading 'fir' into the reclaimed space:")
    manager.place_task("fir")
    show(controller)

    print(f"\nexternal memory footprint: {controller.memory.total_bits:,} "
          f"bits for {len(tasks)} tasks")


if __name__ == "__main__":
    main()
